// Package lru implements the recency list at the heart of both the paper's
// proposed scheme and the single-technology baselines: a doubly-linked LRU
// list with O(1) lookup, plus optional *position windows* ("markers").
//
// A marker watches the top K positions of the list. The proposed scheme
// (Section IV) keeps read/write counters only for pages within the top
// readperc/writeperc fraction of the NVM queue; when a page is pushed across
// that boundary its counter is reset (Algorithm 1, lines 8-9). Markers make
// that O(1) per operation: each marker tracks the boundary node (the K-th
// from the front) and fires a demotion callback exactly when a node crosses
// the boundary outward. Nodes that passively slide *into* a window (because
// another node left) fire nothing, matching the algorithm.
package lru

import (
	"errors"
	"fmt"
)

// DemoteFunc is called when a node is pushed out of a marker's window. The
// value pointer may be mutated (the scheme resets its counters).
type DemoteFunc[V any] func(key uint64, v *V)

// MarkerID identifies a window created by AddMarker.
type MarkerID int

type node[V any] struct {
	key        uint64
	val        V
	prev, next *node[V] // prev is toward the front (MRU), next toward the back (LRU)
	inWin      uint8    // bit i set => inside marker i's window
}

type marker[V any] struct {
	cap      int
	count    int
	boundary *node[V] // the last (deepest) node inside the window, nil if empty
	onDemote DemoteFunc[V]
}

// List is an LRU list from page keys to values. The front is the most
// recently used position. The zero value is not usable; call New.
type List[V any] struct {
	nodes   map[uint64]*node[V]
	root    node[V] // sentinel: root.next = front, root.prev = back
	markers []*marker[V]
}

// New returns an empty list.
func New[V any]() *List[V] {
	l := &List[V]{nodes: make(map[uint64]*node[V])}
	l.root.next = &l.root
	l.root.prev = &l.root
	return l
}

// AddMarker registers a window over the top `capacity` positions. Markers
// must be added while the list is empty, and at most 8 are supported.
func (l *List[V]) AddMarker(capacity int, onDemote DemoteFunc[V]) (MarkerID, error) {
	if len(l.nodes) != 0 {
		return 0, errors.New("lru: markers must be added to an empty list")
	}
	if capacity < 1 {
		return 0, fmt.Errorf("lru: marker capacity %d < 1", capacity)
	}
	if len(l.markers) == 8 {
		return 0, errors.New("lru: at most 8 markers supported")
	}
	l.markers = append(l.markers, &marker[V]{cap: capacity, onDemote: onDemote})
	return MarkerID(len(l.markers) - 1), nil
}

// Len returns the number of nodes in the list.
func (l *List[V]) Len() int { return len(l.nodes) }

// Contains reports whether key is present.
func (l *List[V]) Contains(key uint64) bool {
	_, ok := l.nodes[key]
	return ok
}

// Get returns a pointer to key's value without changing its position.
func (l *List[V]) Get(key uint64) (*V, bool) {
	n, ok := l.nodes[key]
	if !ok {
		return nil, false
	}
	return &n.val, true
}

// InWindow reports whether key is currently inside marker m's window.
func (l *List[V]) InWindow(key uint64, m MarkerID) bool {
	n, ok := l.nodes[key]
	return ok && n.inWin&(1<<uint(m)) != 0
}

// Front returns the most recently used key.
func (l *List[V]) Front() (uint64, bool) {
	if l.Len() == 0 {
		return 0, false
	}
	return l.root.next.key, true
}

// Back returns the least recently used key.
func (l *List[V]) Back() (uint64, bool) {
	if l.Len() == 0 {
		return 0, false
	}
	return l.root.prev.key, true
}

func (l *List[V]) linkFront(n *node[V]) {
	n.prev = &l.root
	n.next = l.root.next
	n.prev.next = n
	n.next.prev = n
}

func (l *List[V]) unlink(n *node[V]) {
	n.prev.next = n.next
	n.next.prev = n.prev
	n.prev, n.next = nil, nil
}

func (m *marker[V]) demote(n *node[V], bit uint8) {
	n.inWin &^= bit
	if m.onDemote != nil {
		m.onDemote(n.key, &n.val)
	}
}

// PushFront inserts a new key at the MRU position. It is an error if the key
// is already present (use Touch).
func (l *List[V]) PushFront(key uint64, v V) error {
	if _, ok := l.nodes[key]; ok {
		return fmt.Errorf("lru: key %d already present", key)
	}
	n := &node[V]{key: key, val: v}
	l.nodes[key] = n
	l.linkFront(n)
	for i, m := range l.markers {
		bit := uint8(1) << uint(i)
		if m.count < m.cap {
			m.count++
			n.inWin |= bit
			if m.boundary == nil {
				m.boundary = n
			}
			continue
		}
		// Window full: the old boundary node is pushed out; the node just
		// above it becomes the new boundary and the fresh node enters.
		old := m.boundary
		m.boundary = old.prev
		m.demote(old, bit)
		n.inWin |= bit
	}
	return nil
}

// Touch moves key to the MRU position and returns a pointer to its value.
func (l *List[V]) Touch(key uint64) (*V, bool) {
	n, ok := l.nodes[key]
	if !ok {
		return nil, false
	}
	if l.root.next == n { // already front; membership cannot change
		return &n.val, true
	}
	oldPrev := n.prev
	l.unlink(n)
	l.linkFront(n)
	for i, m := range l.markers {
		bit := uint8(1) << uint(i)
		if n.inWin&bit != 0 {
			// Moving within the window: membership is unchanged; only the
			// boundary can shift, when the boundary node itself moved.
			if m.boundary == n && m.count > 1 {
				m.boundary = oldPrev
			}
			continue
		}
		// The node jumps from beyond the window to the front.
		if m.count < m.cap {
			m.count++
			n.inWin |= bit
			if m.boundary == nil {
				m.boundary = n
			}
			continue
		}
		old := m.boundary
		m.boundary = old.prev
		m.demote(old, bit)
		n.inWin |= bit
	}
	return &n.val, true
}

// removeNode fixes markers and unlinks n.
func (l *List[V]) removeNode(n *node[V]) V {
	for i, m := range l.markers {
		bit := uint8(1) << uint(i)
		if n.inWin&bit == 0 {
			continue
		}
		n.inWin &^= bit // leaving the list, not a demotion: no callback
		if m.boundary == n {
			if n.next != &l.root {
				// The first beyond-window node slides in silently.
				m.boundary = n.next
				n.next.inWin |= bit
			} else {
				if n.prev != &l.root {
					m.boundary = n.prev
				} else {
					m.boundary = nil
				}
				m.count--
			}
			continue
		}
		if m.boundary.next != &l.root {
			m.boundary.next.inWin |= bit
			m.boundary = m.boundary.next
		} else {
			m.count--
		}
	}
	l.unlink(n)
	delete(l.nodes, n.key)
	return n.val
}

// Remove deletes key from any position and returns its value.
func (l *List[V]) Remove(key uint64) (V, bool) {
	n, ok := l.nodes[key]
	if !ok {
		var zero V
		return zero, false
	}
	return l.removeNode(n), true
}

// RemoveBack evicts the LRU node and returns its key and value.
func (l *List[V]) RemoveBack() (uint64, V, bool) {
	if l.Len() == 0 {
		var zero V
		return 0, zero, false
	}
	n := l.root.prev
	key := n.key
	return key, l.removeNode(n), true
}

// Keys returns all keys from front (MRU) to back (LRU). Intended for tests
// and reports; O(n).
func (l *List[V]) Keys() []uint64 {
	keys := make([]uint64, 0, l.Len())
	for n := l.root.next; n != &l.root; n = n.next {
		keys = append(keys, n.key)
	}
	return keys
}

// WindowKeys returns the keys currently inside marker m's window, front to
// back. O(n); intended for tests.
func (l *List[V]) WindowKeys(m MarkerID) []uint64 {
	var keys []uint64
	bit := uint8(1) << uint(m)
	for n := l.root.next; n != &l.root; n = n.next {
		if n.inWin&bit != 0 {
			keys = append(keys, n.key)
		}
	}
	return keys
}

// CheckInvariants recomputes every marker's window from scratch and compares
// it with the incremental state. It returns an error describing the first
// inconsistency found. Used by property tests.
func (l *List[V]) CheckInvariants() error {
	// Walk forward and backward to validate the links.
	fwd := 0
	for n := l.root.next; n != &l.root; n = n.next {
		if got, ok := l.nodes[n.key]; !ok || got != n {
			return fmt.Errorf("lru: node %d linked but not mapped", n.key)
		}
		fwd++
	}
	if fwd != len(l.nodes) {
		return fmt.Errorf("lru: %d linked nodes, %d mapped", fwd, len(l.nodes))
	}
	for i, m := range l.markers {
		bit := uint8(1) << uint(i)
		wantCount := m.cap
		if l.Len() < m.cap {
			wantCount = l.Len()
		}
		if m.count != wantCount {
			return fmt.Errorf("lru: marker %d count %d, want %d", i, m.count, wantCount)
		}
		pos := 0
		var lastIn *node[V]
		for n := l.root.next; n != &l.root; n = n.next {
			pos++
			in := pos <= m.cap
			if in {
				lastIn = n
			}
			if got := n.inWin&bit != 0; got != in {
				return fmt.Errorf("lru: marker %d node %d at pos %d: inWin=%v, want %v",
					i, n.key, pos, got, in)
			}
		}
		if m.boundary != lastIn {
			gotKey, wantKey := uint64(0), uint64(0)
			if m.boundary != nil {
				gotKey = m.boundary.key
			}
			if lastIn != nil {
				wantKey = lastIn.key
			}
			return fmt.Errorf("lru: marker %d boundary %d, want %d", i, gotKey, wantKey)
		}
	}
	return nil
}
