package lru

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestEmptyList(t *testing.T) {
	l := New[int]()
	if l.Len() != 0 {
		t.Error("new list not empty")
	}
	if _, ok := l.Front(); ok {
		t.Error("Front on empty returned ok")
	}
	if _, ok := l.Back(); ok {
		t.Error("Back on empty returned ok")
	}
	if _, _, ok := l.RemoveBack(); ok {
		t.Error("RemoveBack on empty returned ok")
	}
	if _, ok := l.Touch(1); ok {
		t.Error("Touch on empty returned ok")
	}
	if _, ok := l.Remove(1); ok {
		t.Error("Remove on empty returned ok")
	}
}

func TestBasicLRUOrder(t *testing.T) {
	l := New[string]()
	for i := uint64(1); i <= 4; i++ {
		if err := l.PushFront(i, "v"); err != nil {
			t.Fatal(err)
		}
	}
	// Order: 4 3 2 1 (front to back).
	if got := l.Keys(); !reflect.DeepEqual(got, []uint64{4, 3, 2, 1}) {
		t.Fatalf("keys = %v", got)
	}
	if _, ok := l.Touch(2); !ok {
		t.Fatal("Touch(2) missed")
	}
	if got := l.Keys(); !reflect.DeepEqual(got, []uint64{2, 4, 3, 1}) {
		t.Fatalf("after touch keys = %v", got)
	}
	if k, _, ok := l.RemoveBack(); !ok || k != 1 {
		t.Fatalf("RemoveBack = %d, want 1", k)
	}
	if f, _ := l.Front(); f != 2 {
		t.Errorf("Front = %d, want 2", f)
	}
	if b, _ := l.Back(); b != 3 {
		t.Errorf("Back = %d, want 3", b)
	}
}

func TestPushFrontDuplicate(t *testing.T) {
	l := New[int]()
	if err := l.PushFront(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := l.PushFront(1, 0); err == nil {
		t.Error("duplicate PushFront should error")
	}
}

func TestGetDoesNotReorder(t *testing.T) {
	l := New[int]()
	for i := uint64(1); i <= 3; i++ {
		l.PushFront(i, int(i)*10)
	}
	v, ok := l.Get(1)
	if !ok || *v != 10 {
		t.Fatalf("Get(1) = %v, %v", v, ok)
	}
	*v = 99
	if got := l.Keys(); !reflect.DeepEqual(got, []uint64{3, 2, 1}) {
		t.Errorf("Get reordered: %v", got)
	}
	if v2, _ := l.Get(1); *v2 != 99 {
		t.Error("Get pointer did not persist mutation")
	}
}

func TestMarkerRules(t *testing.T) {
	l := New[int]()
	if _, err := l.AddMarker(0, nil); err == nil {
		t.Error("capacity 0 marker should error")
	}
	l.PushFront(1, 0)
	if _, err := l.AddMarker(2, nil); err == nil {
		t.Error("AddMarker on non-empty list should error")
	}
	l2 := New[int]()
	for i := 0; i < 8; i++ {
		if _, err := l2.AddMarker(1, nil); err != nil {
			t.Fatalf("marker %d: %v", i, err)
		}
	}
	if _, err := l2.AddMarker(1, nil); err == nil {
		t.Error("9th marker should error")
	}
}

func TestWindowMembershipOnPush(t *testing.T) {
	l := New[int]()
	var demoted []uint64
	m, err := l.AddMarker(2, func(k uint64, _ *int) { demoted = append(demoted, k) })
	if err != nil {
		t.Fatal(err)
	}
	l.PushFront(1, 0) // window: [1]
	l.PushFront(2, 0) // window: [2 1]
	if len(demoted) != 0 {
		t.Fatalf("unexpected demotions %v", demoted)
	}
	l.PushFront(3, 0) // window: [3 2], demote 1
	if !reflect.DeepEqual(demoted, []uint64{1}) {
		t.Fatalf("demoted = %v, want [1]", demoted)
	}
	if !l.InWindow(3, m) || !l.InWindow(2, m) || l.InWindow(1, m) {
		t.Errorf("window membership wrong: %v", l.WindowKeys(m))
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWindowTouchInsideNoDemotion(t *testing.T) {
	l := New[int]()
	var demoted []uint64
	m, _ := l.AddMarker(3, func(k uint64, _ *int) { demoted = append(demoted, k) })
	for i := uint64(1); i <= 5; i++ {
		l.PushFront(i, 0)
	}
	// list: 5 4 3 2 1; window: {5 4 3}; pushes demoted 1 then 2.
	demoted = nil
	// Touch a node already inside the window: nobody crosses the boundary.
	l.Touch(4) // list: 4 5 3
	if len(demoted) != 0 {
		t.Errorf("touch inside window demoted %v", demoted)
	}
	if got := l.WindowKeys(m); !reflect.DeepEqual(got, []uint64{4, 5, 3}) {
		t.Errorf("window = %v, want [4 5 3]", got)
	}
	// Touch the boundary node itself.
	l.Touch(3) // window: 3 4 5
	if len(demoted) != 0 {
		t.Errorf("touch boundary demoted %v", demoted)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWindowTouchFromOutsideDemotesBoundary(t *testing.T) {
	l := New[int]()
	var demoted []uint64
	m, _ := l.AddMarker(2, func(k uint64, _ *int) { demoted = append(demoted, k) })
	for i := uint64(1); i <= 4; i++ {
		l.PushFront(i, 0)
	}
	// list: 4 3 2 1; window {4 3}.
	demoted = nil
	l.Touch(1) // 1 enters window, 3 leaves. list: 1 4 3 2, window {1 4}.
	if !reflect.DeepEqual(demoted, []uint64{3}) {
		t.Errorf("demoted = %v, want [3]", demoted)
	}
	if got := l.WindowKeys(m); !reflect.DeepEqual(got, []uint64{1, 4}) {
		t.Errorf("window = %v, want [1 4]", got)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWindowSlideInOnRemove(t *testing.T) {
	l := New[int]()
	var demoted []uint64
	m, _ := l.AddMarker(2, func(k uint64, _ *int) { demoted = append(demoted, k) })
	for i := uint64(1); i <= 4; i++ {
		l.PushFront(i, 0)
	}
	demoted = nil
	// Remove an in-window node: the first beyond-window node slides in
	// silently (no demotion callback).
	l.Remove(4) // list: 3 2 1; window {3 2}
	if len(demoted) != 0 {
		t.Errorf("remove caused demotions %v", demoted)
	}
	if got := l.WindowKeys(m); !reflect.DeepEqual(got, []uint64{3, 2}) {
		t.Errorf("window = %v, want [3 2]", got)
	}
	// Remove the boundary node: same silent slide-in.
	l.Remove(2) // list: 3 1; window {3 1}
	if got := l.WindowKeys(m); !reflect.DeepEqual(got, []uint64{3, 1}) {
		t.Errorf("window = %v, want [3 1]", got)
	}
	if len(demoted) != 0 {
		t.Errorf("boundary remove caused demotions %v", demoted)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveBackUpdatesWindows(t *testing.T) {
	l := New[int]()
	m, _ := l.AddMarker(5, nil)
	for i := uint64(1); i <= 3; i++ {
		l.PushFront(i, 0)
	}
	// All 3 nodes inside a window of capacity 5.
	k, _, ok := l.RemoveBack()
	if !ok || k != 1 {
		t.Fatalf("RemoveBack = %d, want 1", k)
	}
	if got := l.WindowKeys(m); !reflect.DeepEqual(got, []uint64{3, 2}) {
		t.Errorf("window = %v", got)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDemoteCallbackCanMutateValue(t *testing.T) {
	l := New[int]()
	l.AddMarker(1, func(_ uint64, v *int) { *v = 0 })
	l.PushFront(1, 7)
	l.PushFront(2, 8) // demotes 1, resetting its value
	if v, _ := l.Get(1); *v != 0 {
		t.Errorf("value after demotion = %d, want 0", *v)
	}
	if v, _ := l.Get(2); *v != 8 {
		t.Errorf("in-window value = %d, want 8", *v)
	}
}

func TestNestedWindows(t *testing.T) {
	// Two markers as in the proposed scheme (readperc < writeperc).
	l := New[int]()
	small, _ := l.AddMarker(2, nil)
	large, _ := l.AddMarker(4, nil)
	for i := uint64(1); i <= 6; i++ {
		l.PushFront(i, 0)
	}
	// list: 6 5 4 3 2 1
	if got := l.WindowKeys(small); !reflect.DeepEqual(got, []uint64{6, 5}) {
		t.Errorf("small window = %v", got)
	}
	if got := l.WindowKeys(large); !reflect.DeepEqual(got, []uint64{6, 5, 4, 3}) {
		t.Errorf("large window = %v", got)
	}
	// A node in the large-only region touched to front enters both.
	l.Touch(3)
	if !l.InWindow(3, small) || !l.InWindow(3, large) {
		t.Error("touched node should be in both windows")
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRandomOpsInvariants drives the list with random operations and
// validates the incremental window state against a from-scratch recompute
// after every step.
func TestRandomOpsInvariants(t *testing.T) {
	for _, caps := range [][]int{{1}, {3}, {2, 5}, {1, 4, 9}} {
		rng := rand.New(rand.NewSource(42))
		l := New[int]()
		for _, c := range caps {
			if _, err := l.AddMarker(c, nil); err != nil {
				t.Fatal(err)
			}
		}
		var present []uint64
		nextKey := uint64(1)
		for step := 0; step < 3000; step++ {
			switch op := rng.Intn(10); {
			case op < 4: // push
				l.PushFront(nextKey, step)
				present = append(present, nextKey)
				nextKey++
			case op < 7: // touch
				if len(present) > 0 {
					k := present[rng.Intn(len(present))]
					if _, ok := l.Touch(k); !ok {
						t.Fatalf("step %d: Touch(%d) missed", step, k)
					}
				}
			case op < 9: // remove random
				if len(present) > 0 {
					i := rng.Intn(len(present))
					k := present[i]
					if _, ok := l.Remove(k); !ok {
						t.Fatalf("step %d: Remove(%d) missed", step, k)
					}
					present = append(present[:i], present[i+1:]...)
				}
			default: // remove back
				if k, _, ok := l.RemoveBack(); ok {
					for i, p := range present {
						if p == k {
							present = append(present[:i], present[i+1:]...)
							break
						}
					}
				}
			}
			if err := l.CheckInvariants(); err != nil {
				t.Fatalf("caps %v step %d: %v", caps, step, err)
			}
			if l.Len() != len(present) {
				t.Fatalf("step %d: len %d, want %d", step, l.Len(), len(present))
			}
		}
	}
}

// TestDemotionExactness checks that across a random workload, a demotion
// callback fires for a key if and only if that key actually left the window
// while remaining in the list (validated against a brute-force model).
func TestDemotionExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const capacity = 4
	l := New[int]()
	demotions := map[uint64]int{}
	if _, err := l.AddMarker(capacity, func(k uint64, _ *int) { demotions[k]++ }); err != nil {
		t.Fatal(err)
	}

	// Brute-force mirror: slice of keys, front at index 0.
	var mirror []uint64
	expected := map[uint64]int{}
	inWin := func(keys []uint64, k uint64) bool {
		for i, kk := range keys {
			if kk == k {
				return i < capacity
			}
		}
		return false
	}
	apply := func(f func()) (before []uint64) {
		before = append([]uint64(nil), mirror...)
		f()
		return before
	}
	nextKey := uint64(1)
	for step := 0; step < 2000; step++ {
		switch op := rng.Intn(3); {
		case op == 0 || len(mirror) == 0:
			k := nextKey
			nextKey++
			before := apply(func() { mirror = append([]uint64{k}, mirror...) })
			l.PushFront(k, 0)
			for _, kk := range before {
				if inWin(before, kk) && !inWin(mirror, kk) {
					expected[kk]++
				}
			}
		case op == 1:
			k := mirror[rng.Intn(len(mirror))]
			before := apply(func() {
				for i, kk := range mirror {
					if kk == k {
						mirror = append(mirror[:i], mirror[i+1:]...)
						break
					}
				}
				mirror = append([]uint64{k}, mirror...)
			})
			l.Touch(k)
			for _, kk := range before {
				if kk == k {
					continue
				}
				if inWin(before, kk) && !inWin(mirror, kk) {
					expected[kk]++
				}
			}
		default:
			i := rng.Intn(len(mirror))
			k := mirror[i]
			apply(func() { mirror = append(mirror[:i], mirror[i+1:]...) })
			l.Remove(k)
			// Removals never demote.
		}
		if !reflect.DeepEqual(demotions, expected) {
			t.Fatalf("step %d: demotions %v, want %v", step, demotions, expected)
		}
	}
}
