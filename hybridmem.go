// Package hybridmem is a from-scratch reproduction of "An Operating System
// Level Data Migration Scheme in Hybrid DRAM-NVM Memory Architecture"
// (Salkhordeh & Asadi, DATE 2016): an OS-level page-migration scheme for
// hybrid DRAM-NVM main memories built on two LRU queues with windowed
// read/write counters, evaluated against CLOCK-DWF and single-technology
// baselines with the paper's AMAT, power and endurance models.
//
// This package is the public facade. It exposes:
//
//   - System: a hybrid memory under one of the six management policies
//     exported as PolicyKind constants — Proposed, ProposedAdaptive,
//     ClockDWF, DRAMCache, DRAMOnly and NVMOnly — fed with line-sized
//     accesses and evaluated with the paper's models (a seventh policy,
//     the static-partition ablation, lives in internal/policy and is used
//     only by the architecture experiments);
//   - GenerateWorkload: the twelve synthetic PARSEC-like traces calibrated
//     to the paper's Table III;
//   - the policy kinds and tuning knobs of the proposed scheme.
//
// System is single-threaded: it is the reference implementation the
// evaluation replays traces through. To serve concurrent traffic, use the
// online engine instead — internal/tiered runs Proposed, ProposedAdaptive
// and ClockDWF behind a sharded page table with a background migration
// daemon (cmd/tierd benchmarks it), and is equivalence-tested against this
// facade's accounting at one goroutine. The online engine is multi-tenant:
// isolated page namespaces with per-tenant DRAM quotas, a shared spill
// pool, and fair (round-robin) apportioning of the migration budget across
// tenants — the consolidated `mix` study served live.
//
// The full evaluation machinery (figure regeneration, sweeps, claims
// extraction) lives in the cmd/ tools; see README.md.
//
// Quick start:
//
//	warm, roi, _ := hybridmem.GenerateWorkload("ferret", 0.01, 1)
//	sys, _ := hybridmem.NewSystem(hybridmem.Proposed, hybridmem.SizeFor(len(warm)))
//	sys.Warm(warm)
//	res, _ := sys.Run(roi)
//	fmt.Println(res.AMATNanos, res.PowerNanojoulesPerAccess)
package hybridmem

import (
	"fmt"

	"hybridmem/internal/clockdwf"
	"hybridmem/internal/core"
	"hybridmem/internal/dramcache"
	"hybridmem/internal/memspec"
	"hybridmem/internal/model"
	"hybridmem/internal/policy"
	"hybridmem/internal/sim"
	"hybridmem/internal/trace"
	"hybridmem/internal/workload"
)

// Access is one line-sized memory access.
type Access struct {
	// Addr is the byte address.
	Addr uint64
	// Write distinguishes stores from loads.
	Write bool
	// GapNS is CPU execution time since the previous access, in
	// nanoseconds; it feeds the static-power proration (Eq. 3).
	GapNS uint32
}

// PolicyKind selects the memory-management algorithm.
type PolicyKind string

// The available policies.
const (
	// Proposed is the paper's two-LRU migration scheme (Algorithm 1).
	Proposed PolicyKind = "proposed"
	// ProposedAdaptive adds the adaptive-threshold controller (the paper's
	// stated future work).
	ProposedAdaptive PolicyKind = "proposed-adaptive"
	// ClockDWF is the CLOCK-DWF baseline (Lee, Bahn & Noh, IEEE TC 2013).
	ClockDWF PolicyKind = "clock-dwf"
	// DRAMOnly is a DRAM-only main memory under LRU.
	DRAMOnly PolicyKind = "dram-only"
	// NVMOnly is an NVM-only main memory under LRU.
	NVMOnly PolicyKind = "nvm-only"
	// DRAMCache is the rival architecture of Section III: DRAM as a page
	// cache in front of an NVM main memory.
	DRAMCache PolicyKind = "dram-cache"
)

// Size is the memory provisioning of a System.
type Size struct {
	// DRAMPages and NVMPages are the zone capacities in 4KB frames. The
	// single-technology policies use DRAMPages+NVMPages frames of their
	// one technology.
	DRAMPages, NVMPages int
}

// SizeFor applies the paper's Section V-A rule to a footprint: total memory
// is 75% of the workload's pages, DRAM is 10% of that.
func SizeFor(footprintPages int) Size {
	d, n := memspec.DefaultSizing().Partition(footprintPages)
	return Size{DRAMPages: d, NVMPages: n}
}

// Option tunes a System.
type Option func(*options)

type options struct {
	coreCfg      core.Config
	adaptiveCfg  core.AdaptiveConfig
	dwfCfg       clockdwf.Config
	dramCacheCfg dramcache.Config
	spec         memspec.Spec
}

// WithThresholds sets the proposed scheme's migration thresholds.
func WithThresholds(read, write int) Option {
	return func(o *options) {
		o.coreCfg.ReadThreshold = read
		o.coreCfg.WriteThreshold = write
	}
}

// WithWindows sets the proposed scheme's counter windows as fractions of the
// NVM queue.
func WithWindows(readPerc, writePerc float64) Option {
	return func(o *options) {
		o.coreCfg.ReadPerc = readPerc
		o.coreCfg.WritePerc = writePerc
	}
}

// WithWordAccounting switches to 4B-word access granularity (PageFactor
// 1024), the paper's alternative accounting.
func WithWordAccounting() Option {
	return func(o *options) { o.spec.Geometry = memspec.WordGeometry() }
}

// System is a hybrid main memory under one management policy.
type System struct {
	kind PolicyKind
	pol  policy.Policy
	spec memspec.Spec
}

// NewSystem builds a memory system.
func NewSystem(kind PolicyKind, size Size, opts ...Option) (*System, error) {
	o := options{
		coreCfg:      core.DefaultConfig(),
		adaptiveCfg:  core.DefaultAdaptiveConfig(),
		dwfCfg:       clockdwf.DefaultConfig(),
		dramCacheCfg: dramcache.DefaultConfig(),
		spec:         memspec.Default(),
	}
	for _, opt := range opts {
		opt(&o)
	}
	var (
		pol policy.Policy
		err error
	)
	switch kind {
	case Proposed:
		pol, err = core.New(size.DRAMPages, size.NVMPages, o.coreCfg)
	case ProposedAdaptive:
		pol, err = core.NewAdaptive(size.DRAMPages, size.NVMPages, o.coreCfg, o.adaptiveCfg)
	case ClockDWF:
		pol, err = clockdwf.New(size.DRAMPages, size.NVMPages, o.dwfCfg)
	case DRAMOnly:
		pol, err = policy.NewDRAMOnly(size.DRAMPages + size.NVMPages)
	case NVMOnly:
		pol, err = policy.NewNVMOnly(size.DRAMPages + size.NVMPages)
	case DRAMCache:
		pol, err = dramcache.New(size.DRAMPages, size.NVMPages, o.dramCacheCfg)
	default:
		return nil, fmt.Errorf("hybridmem: unknown policy %q", kind)
	}
	if err != nil {
		return nil, err
	}
	return &System{kind: kind, pol: pol, spec: o.spec}, nil
}

// Kind returns the system's policy.
func (s *System) Kind() PolicyKind { return s.kind }

func toSource(accesses []Access) trace.Source {
	i := 0
	return trace.FuncSource(func() (trace.Record, bool) {
		if i >= len(accesses) {
			return trace.Record{}, false
		}
		a := accesses[i]
		i++
		op := trace.OpRead
		if a.Write {
			op = trace.OpWrite
		}
		return trace.Record{Addr: a.Addr, Op: op, GapNS: a.GapNS}, true
	})
}

// Warm services accesses without keeping statistics (the pre-ROI
// initialization phase).
func (s *System) Warm(accesses []Access) error {
	_, err := sim.Run(toSource(accesses), s.pol, s.spec, sim.Options{})
	return err
}

// Results is the paper-model evaluation of one run.
type Results struct {
	Accesses int64

	// AMATNanos is the Eq. 1 average memory access time. The breakdown
	// fields sum to it.
	AMATNanos          float64
	AMATHitNanos       float64 // DRAM + NVM request servicing
	AMATDiskNanos      float64 // page-fault stalls
	AMATMigrationNanos float64 // page-migration copies

	// PowerNanojoulesPerAccess is the Eq. 2+3 average power per request.
	PowerNanojoulesPerAccess float64
	PowerStatic              float64
	PowerDynamic             float64
	PowerPageFault           float64
	PowerMigration           float64

	// NVM write sources (line granularity) and endurance.
	NVMWriteLines          int64
	NVMWritesFromRequests  int64
	NVMWritesFromFaults    int64
	NVMWritesFromMigration int64
	// LifetimeYears estimates NVM lifetime under ideal wear leveling
	// (0 when the system has no NVM or saw no writes).
	LifetimeYears float64

	// Placement behaviour.
	DRAMHitRatio, NVMHitRatio, FaultRatio float64
	Promotions, Demotions                 int64
}

// Run services accesses and returns the evaluation.
func (s *System) Run(accesses []Access) (*Results, error) {
	res, err := sim.Run(toSource(accesses), s.pol, s.spec, sim.Options{})
	if err != nil {
		return nil, err
	}
	rep, err := model.Evaluate(res, s.spec)
	if err != nil {
		return nil, err
	}
	out := &Results{
		Accesses:                 rep.Accesses,
		AMATNanos:                rep.AMAT.Total(),
		AMATHitNanos:             rep.AMAT.HitDRAM + rep.AMAT.HitNVM,
		AMATDiskNanos:            rep.AMAT.Miss,
		AMATMigrationNanos:       rep.AMAT.Migrations(),
		PowerNanojoulesPerAccess: rep.APPR.Total(),
		PowerStatic:              rep.APPR.Static,
		PowerDynamic:             rep.APPR.Dynamic(),
		PowerPageFault:           rep.APPR.PageFault(),
		PowerMigration:           rep.APPR.Migration(),
		NVMWriteLines:            rep.NVMWrites.Total(),
		NVMWritesFromRequests:    rep.NVMWrites.Requests,
		NVMWritesFromFaults:      rep.NVMWrites.PageFault,
		NVMWritesFromMigration:   rep.NVMWrites.Migration,
		DRAMHitRatio:             rep.Probabilities.PHitDRAM,
		NVMHitRatio:              rep.Probabilities.PHitNVM,
		FaultRatio:               rep.Probabilities.PMiss,
		Promotions:               res.Counts.Promotions,
		Demotions:                res.Counts.Demotions,
	}
	if res.NVMPages > 0 && res.NVMWear.Total > 0 {
		if e, err := model.EvaluateEndurance(res, s.spec); err == nil {
			out.LifetimeYears = e.LifetimeYearsLeveled
		}
	}
	return out, nil
}

// WorkloadNames lists the twelve Table III workloads.
func WorkloadNames() []string { return workload.Names() }

// WorkloadInfo describes one Table III workload.
type WorkloadInfo struct {
	Name          string
	WorkingSetKB  int
	Reads, Writes int64
}

// Workloads returns the Table III characterization of every workload.
func Workloads() []WorkloadInfo {
	specs := workload.PARSEC()
	out := make([]WorkloadInfo, len(specs))
	for i, s := range specs {
		out[i] = WorkloadInfo{
			Name: s.Name, WorkingSetKB: s.WorkingSetKB,
			Reads: s.Reads, Writes: s.Writes,
		}
	}
	return out
}

// GenerateWorkload synthesizes one Table III workload at the given scale
// (1.0 = the paper's full trace sizes). It returns the warmup phase (every
// page touched once; feed it to System.Warm) and the measured ROI stream.
// Streams are deterministic in (name, scale, seed).
func GenerateWorkload(name string, scale float64, seed int64) (warmup, roi []Access, err error) {
	spec, ok := workload.ByName(name)
	if !ok {
		return nil, nil, fmt.Errorf("hybridmem: unknown workload %q (have %v)", name, workload.Names())
	}
	gen, err := workload.NewGenerator(spec, scale, seed)
	if err != nil {
		return nil, nil, err
	}
	conv := func(src trace.Source) []Access {
		var out []Access
		for {
			r, ok := src.Next()
			if !ok {
				return out
			}
			out = append(out, Access{Addr: r.Addr, Write: r.Op == trace.OpWrite, GapNS: r.GapNS})
		}
	}
	return conv(gen.WarmupSource(seed + 1)), conv(gen), nil
}

// FootprintPages returns the number of distinct 4KB pages in a stream.
func FootprintPages(accesses []Access) int {
	pages := make(map[uint64]struct{})
	for _, a := range accesses {
		pages[a.Addr/4096] = struct{}{}
	}
	return len(pages)
}
