# Local and CI entry points. CI (.github/workflows/ci.yml) invokes exactly
# these targets, so a green `make ci` locally predicts a green pipeline.

GO ?= go

# Packages fast enough for the -race pass: everything except the
# full-evaluation integration tests in internal/experiments (~15s without
# -race, several minutes with it). internal/tiered is deliberately in this
# set: its concurrent serve + migration-daemon stress tests are the whole
# point of running under the race detector.
FAST_PKGS = $$($(GO) list ./... | grep -v internal/experiments)

.PHONY: all build vet test race bench bench-json bench-baseline clean fmt fmt-check tierd-smoke tierd-mt-smoke tierd-numa-smoke tierd-net-smoke tierd-obs-smoke tierd-crash-smoke ci

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(FAST_PKGS)

# One-iteration benchmark smoke: catches benchmarks that no longer compile
# or crash without paying for stable measurements. internal/tiered and
# internal/server are excluded here because bench-json runs (and captures)
# exactly those suites — running them twice per CI pass buys nothing.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' $$($(GO) list ./... | grep -v internal/tiered | grep -v internal/server)

# Machine-readable benchmark artifact + perf gate: the serve-path suites
# as BENCH_tiered.json (hybridmem.bench/v1), published by CI so the perf
# trajectory is diffable run over run — and diffed against the committed
# BENCH_baseline.json: a result on a gated path (the lockfree table
# probe, the full engine serve path on the single-node topology, or the
# batched serve path at size=1 and size=64) more than 25% slower than
# baseline fails the build — and so does a gated name missing from the
# baseline, so the BenchmarkServeBatch rows cannot silently drop out of
# the gate. Override BENCHTIME for
# quicker (noisier) local runs; refresh the baseline deliberately with
# `make bench-baseline` when a change legitimately shifts the numbers.
# Each suite runs BENCHCOUNT times and benchjson gates on the per-name
# minimum — the noise-robust estimator — so one descheduled repetition
# cannot flip the gate.
BENCHTIME ?= 300000x
BENCHCOUNT ?= 3
# Checkpoint cuts fsync, so each iteration is milliseconds — the
# checkpoint suite runs far fewer iterations than the in-memory serve
# suites and gets its own benchtime knob. The delta rows are gated: a
# delta cut regressing toward full-cut cost is exactly the regression
# the delta log exists to prevent.
CKPT_BENCHTIME ?= 30x
BENCH_SUITES = BenchmarkShardedTable|BenchmarkTieredServe|BenchmarkServeParallel|BenchmarkServeBatch|BenchmarkServeRESP|BenchmarkServeProcess|BenchmarkRESPParse
BENCH_PKGS = ./internal/tiered ./internal/server
BENCH_GATE = ^BenchmarkServeParallel/impl=(lockfree|engine/nodes=1)/|^BenchmarkServeBatch/size=(1|64)$$|^BenchmarkCheckpointCut/mode=delta
bench-json:
	$(GO) test -bench='$(BENCH_SUITES)' -benchtime=$(BENCHTIME) -count=$(BENCHCOUNT) -run='^$$' $(BENCH_PKGS) > bench_tiered.txt
	$(GO) test -bench='^BenchmarkCheckpointCut$$' -benchtime=$(CKPT_BENCHTIME) -count=$(BENCHCOUNT) -run='^$$' ./internal/persist >> bench_tiered.txt
	$(GO) run ./cmd/benchjson -suite tiered -baseline BENCH_baseline.json -gate '$(BENCH_GATE)' -out BENCH_tiered.json < bench_tiered.txt
	@rm -f bench_tiered.txt

# Regenerate the committed perf baseline (run on the machine the gate will
# compare on; commit the result).
bench-baseline:
	$(GO) test -bench='$(BENCH_SUITES)' -benchtime=$(BENCHTIME) -count=$(BENCHCOUNT) -run='^$$' $(BENCH_PKGS) > bench_tiered.txt
	$(GO) test -bench='^BenchmarkCheckpointCut$$' -benchtime=$(CKPT_BENCHTIME) -count=$(BENCHCOUNT) -run='^$$' ./internal/persist >> bench_tiered.txt
	$(GO) run ./cmd/benchjson -suite tiered-baseline -out BENCH_baseline.json < bench_tiered.txt
	@rm -f bench_tiered.txt

# Online-engine smoke: verify single-goroutine equivalence against the
# reference simulator, then serve a short concurrent closed-loop run and
# emit the results artifact.
tierd-smoke:
	$(GO) run ./cmd/tierd -workload bodytrack -scale 0.05 -goroutines 4 -ops 300000 -verify -json -out tierd.json

# Multi-tenant smoke: three isolated tenants with DRAM quotas served
# concurrently, per-tenant results emitted as an artifact.
tierd-mt-smoke:
	$(GO) run ./cmd/tierd -tenants 'bodytrack:40,canneal:30,ferret:30' -scale 0.02 -goroutines 4 -ops 200000 -json -out tierd-mt.json

# NUMA smoke: two emulated nodes with per-node DRAM/NVM pools. The
# artifact must contain one row per node and nonzero local AND remote
# migration counts (home-node preference with remote fallback) — checked,
# not just emitted, so a regression that stops cross-node fallback (or
# drops the per-node rows) fails CI.
tierd-numa-smoke:
	$(GO) run ./cmd/tierd -workload bodytrack -scale 0.02 -goroutines 4 -ops 200000 -numa nodes=2,remote-penalty=1.8 -json -out tierd-numa.json
	@python3 -c "\
	import json; a = json.load(open('tierd-numa.json')); \
	rows = [r for r in a['results'] if r['id'].startswith('node')]; \
	assert len(rows) == 2, 'expected 2 per-node rows, got %d' % len(rows); \
	v = a['results'][0]['values']; \
	remote = v['remote_promotions'] + v['remote_demotions']; \
	local = v['promotions'] + v['demotions'] - remote; \
	assert local > 0 and remote > 0, 'migrations local=%d remote=%d, both must be nonzero' % (local, remote); \
	print('tierd-numa-smoke: ok (%d local / %d remote migrations, %d node rows)' % (local, remote, len(rows)))"

# Network smoke: build tierd once, start its RESP server in the
# background, drive pipelined load at it from the benchmark client over
# loopback, then SIGTERM the server and wait for the drain. Both
# artifacts are then checked, not just emitted: the client must have
# observed nonzero engine hits through the wire (the server_* fields it
# fetches over STATS), and the server must report a clean drain.
tierd-net-smoke:
	$(GO) build -o tierd-net-bin ./cmd/tierd
	@./tierd-net-bin -serve 127.0.0.1:16379 -workload bodytrack -scale 0.05 -json -out tierd-net-serve.json & \
	SRV=$$!; \
	./tierd-net-bin -connect 127.0.0.1:16379 -workload bodytrack -scale 0.05 \
		-connections 2 -pipeline 16 -ops 200000 -duration 30s -json -out tierd-net-client.json \
		|| { kill $$SRV 2>/dev/null; exit 1; }; \
	kill -TERM $$SRV && wait $$SRV
	@python3 -c "\
	import json; \
	c = json.load(open('tierd-net-client.json'))['results'][0]['values']; \
	s = json.load(open('tierd-net-serve.json'))['results'][0]['values']; \
	hits = c.get('server_hits_dram', 0) + c.get('server_hits_nvm', 0); \
	assert c['ops'] > 0, 'client completed no ops'; \
	assert hits > 0, 'no engine hits observed over the wire'; \
	assert s['clean_drain'] == 1, 'server drain was not clean'; \
	assert s['commands'] >= c['ops'], 'server saw fewer commands than the client sent'; \
	assert c.get('server_batched_ops', 0) > 0, 'server reported no batched dispatches'; \
	print('tierd-net-smoke: ok (%d ops, %d hits, %d batched, %.0f ops/s, clean drain)' % (c['ops'], hits, c['server_batched_ops'], c['ops_per_sec']))"
	@rm -f tierd-net-bin

# Crash-recovery smoke: the persistence tentpole's end-to-end gate, three
# phases. Phase 1: a tierd -serve with -persist cuts a full base then
# periodic delta cuts (-checkpoint-full-every 64 keeps the chain on
# deltas) while the client measures the cold-start recovery KPI (-kpi:
# time to 90% of the steady-state hit rate); after a quiet window the
# server is killed with SIGKILL between delta cuts — no drain, no final
# checkpoint, exactly the crash the chain's frame recovery exists for.
# Phase 2: a server restarted on the same directory must replay base +
# deltas (restore_chain_deltas >= 1), restore page-count-exactly
# (restore_pages == restore_chain_records - restore_skipped), warm up
# through the daemon storm (-warmup-dram-topk 0), and its client-measured
# warm KPI must beat the cold one; its quiet-window delta cuts must also
# be far smaller than the base (the O(dirty) claim, checked on bytes).
# Phase 3: another restart with age-tiered warm-up on
# (-warmup-dram-topk 1000000) places the hottest restored pages straight
# into DRAM (restore_warm_direct > 0), must still beat the cold start on
# the recovery KPI, and must restore MORE pages than phase 2: a
# storm-only restart targets NVM for everything, so when the checkpoint
# holds a full machine (NVM + DRAM residency) the NVM overflow is
# dropped on the floor (restore_skipped), while direct DRAM placement
# absorbs exactly that overflow — the deterministic, page-count-exact
# win of age-tiered warm-up. The storm-vs-topk gap is NOT asserted on
# cumulative KPI rates: at this scale the storm drains its whole queue
# in one 2ms scan tick, so over a 3s window the two warm restarts are
# statistically identical and either could win a cumulative-rate race.
tierd-crash-smoke:
	$(GO) build -o tierd-crash-bin ./cmd/tierd
	@rm -rf tierd-crash-persist; \
	./tierd-crash-bin -serve 127.0.0.1:16383 -workload bodytrack -scale 0.5 \
		-persist tierd-crash-persist -checkpoint-interval 250ms -checkpoint-full-every 64 \
		-json -out tierd-crash-serve1.json & \
	SRV=$$!; \
	./tierd-crash-bin -connect 127.0.0.1:16383 -workload bodytrack -scale 0.5 \
		-connections 2 -pipeline 8 -duration 3s -kpi -json -out tierd-crash-cold.json \
		|| { kill -9 $$SRV 2>/dev/null; exit 1; }; \
	sleep 1; \
	kill -9 $$SRV; wait $$SRV 2>/dev/null; \
	./tierd-crash-bin -serve 127.0.0.1:16383 -workload bodytrack -scale 0.5 \
		-persist tierd-crash-persist -checkpoint-interval 250ms -checkpoint-full-every 64 \
		-warmup-dram-topk 0 -json -out tierd-crash-serve2.json & \
	SRV=$$!; \
	./tierd-crash-bin -connect 127.0.0.1:16383 -workload bodytrack -scale 0.5 \
		-connections 2 -pipeline 8 -duration 3s -kpi -json -out tierd-crash-warm.json \
		|| { kill $$SRV 2>/dev/null; exit 1; }; \
	sleep 1; \
	kill -TERM $$SRV && wait $$SRV; \
	./tierd-crash-bin -serve 127.0.0.1:16383 -workload bodytrack -scale 0.5 \
		-persist tierd-crash-persist -checkpoint-interval 250ms -checkpoint-full-every 64 \
		-warmup-dram-topk 1000000 -json -out tierd-crash-serve3.json & \
	SRV=$$!; \
	./tierd-crash-bin -connect 127.0.0.1:16383 -workload bodytrack -scale 0.5 \
		-connections 2 -pipeline 8 -duration 3s -kpi -json -out tierd-crash-warm2.json \
		|| { kill $$SRV 2>/dev/null; exit 1; }; \
	kill -TERM $$SRV && wait $$SRV
	@python3 -c "\
	import json; \
	cold = json.load(open('tierd-crash-cold.json'))['results'][0]['values']; \
	warm = json.load(open('tierd-crash-warm.json'))['results'][0]['values']; \
	warm2 = json.load(open('tierd-crash-warm2.json'))['results'][0]['values']; \
	srv = json.load(open('tierd-crash-serve2.json'))['results'][0]['values']; \
	srv3 = json.load(open('tierd-crash-serve3.json'))['results'][0]['values']; \
	assert srv['cold_start'] == 0 and srv['restore_pages'] > 0, 'restart did not restore the checkpoint'; \
	assert srv['restore_chain_deltas'] >= 1, 'SIGKILL restart replayed no delta cuts'; \
	assert srv['restore_pages'] == srv['restore_chain_records'] - srv['restore_skipped'], \
		'restore not page-count-exact: %d restored vs %d chain - %d skipped' \
		% (srv['restore_pages'], srv['restore_chain_records'], srv['restore_skipped']); \
	assert srv['restore_warm'] > 0, 'restore queued no warm-up candidates'; \
	assert srv['checkpoint_delta_cuts'] > 0, 'server cut no deltas'; \
	assert srv['checkpoint_last_delta_bytes'] * 5 < srv['checkpoint_base_bytes'], \
		'quiet-window delta not small: %d bytes vs %d base' \
		% (srv['checkpoint_last_delta_bytes'], srv['checkpoint_base_bytes']); \
	assert srv['invariants_clean'] == 1, 'invariants violated after recovery'; \
	assert srv['clean_drain'] == 1, 'post-recovery drain was not clean'; \
	assert srv['final_checkpoint'] == 1, 'final checkpoint failed'; \
	assert srv3['cold_start'] == 0 and srv3['restore_warm_direct'] > 0, \
		'top-K restart placed no pages directly in DRAM'; \
	assert srv3['restore_pages'] == srv3['restore_chain_records'] - srv3['restore_skipped'], \
		'phase-3 restore not page-count-exact'; \
	assert srv3['restore_skipped'] < srv['restore_skipped'] and srv3['restore_pages'] > srv['restore_pages'], \
		'top-K placement did not absorb the storm-only restore overflow: %d skipped vs %d' \
		% (srv3['restore_skipped'], srv['restore_skipped']); \
	assert srv3['invariants_clean'] == 1, 'invariants violated after top-K recovery'; \
	assert cold['kpi_samples'] > 0 and warm['kpi_samples'] > 0 and warm2['kpi_samples'] > 0, 'KPI sampler produced no samples'; \
	assert warm['kpi_t90_ms'] < cold['kpi_t90_ms'], \
		'warm restart not faster to 90%% steady hit rate: warm %.1fms vs cold %.1fms' % (warm['kpi_t90_ms'], cold['kpi_t90_ms']); \
	assert warm2['kpi_t90_ms'] < cold['kpi_t90_ms'], \
		'top-K warm restart not faster to 90%% steady hit rate: topk %.1fms vs cold %.1fms' % (warm2['kpi_t90_ms'], cold['kpi_t90_ms']); \
	print('tierd-crash-smoke: ok (restored %d pages over %d deltas, %d warm; topk restored %d with %d direct, %d fewer drops; t90 warm %.1fms / topk %.1fms < cold %.1fms)' \
		% (srv['restore_pages'], srv['restore_chain_deltas'], srv['restore_warm'], \
		srv3['restore_pages'], srv3['restore_warm_direct'], srv['restore_skipped'] - srv3['restore_skipped'], \
		warm['kpi_t90_ms'], warm2['kpi_t90_ms'], cold['kpi_t90_ms']))"
	@rm -f tierd-crash-bin; rm -rf tierd-crash-persist

# Observability smoke: a background tierd -serve with the admin plane on,
# pipelined RESP load driven at it in two passes with different hot sets
# (the second workload heats pages the first left in NVM, so the daemon
# promotes, not just demand-faults). The trace ring is sized above the
# run's total migration count (-trace-ring 65536): promotions are rare
# next to demotion/eviction churn and would be overwritten out of a
# default-size ring. scripts/obs_smoke.py then scrapes
# /healthz, /readyz (invariants included), /metrics and /events and
# asserts the scrape is well-formed with live per-tenant AND per-node
# series, and that the migration trace artifact holds both promotion and
# demotion events with tenant+node attribution. The scrape and the event
# artifact are kept (tierd-obs-metrics.txt, tierd-obs-events.json) and
# uploaded by CI.
tierd-obs-smoke:
	$(GO) build -o tierd-obs-bin ./cmd/tierd
	@./tierd-obs-bin -serve 127.0.0.1:16381 -admin 127.0.0.1:16061 \
		-tenants 'bodytrack:50,canneal:30' -numa nodes=2 -scale 0.05 \
		-trace-ring 65536 -json -out tierd-obs-serve.json & \
	SRV=$$!; \
	./tierd-obs-bin -connect 127.0.0.1:16381 -workload bodytrack -scale 0.05 \
		-connections 2 -pipeline 16 -ops 200000 -duration 30s -json -out tierd-obs-client.json \
		|| { kill $$SRV 2>/dev/null; exit 1; }; \
	./tierd-obs-bin -connect 127.0.0.1:16381 -workload canneal -scale 0.05 \
		-connections 2 -pipeline 16 -ops 200000 -duration 30s -json -out tierd-obs-client2.json \
		|| { kill $$SRV 2>/dev/null; exit 1; }; \
	python3 scripts/obs_smoke.py http://127.0.0.1:16061 tierd-obs \
		|| { kill $$SRV 2>/dev/null; exit 1; }; \
	kill -TERM $$SRV && wait $$SRV
	@rm -f tierd-obs-bin

# Remove the generated run artifacts (smoke JSON/metrics dumps, bench
# output, smoke binaries) that otherwise linger at the repo root. The
# committed BENCH_baseline.json is not touched.
clean:
	rm -f tierd.json tierd-mt.json tierd-numa.json \
		tierd-net-serve.json tierd-net-client.json tierd-net-bin \
		tierd-obs-serve.json tierd-obs-client.json tierd-obs-client2.json \
		tierd-obs-metrics.txt tierd-obs-events.json tierd-obs-bin \
		tierd-crash-serve1.json tierd-crash-serve2.json tierd-crash-serve3.json \
		tierd-crash-cold.json tierd-crash-warm.json tierd-crash-warm2.json tierd-crash-bin \
		BENCH_tiered.json bench_tiered.txt
	rm -rf tierd-crash-persist

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

ci: fmt-check build vet test race bench bench-json tierd-smoke tierd-mt-smoke tierd-numa-smoke tierd-net-smoke tierd-crash-smoke tierd-obs-smoke
