# Local and CI entry points. CI (.github/workflows/ci.yml) invokes exactly
# these targets, so a green `make ci` locally predicts a green pipeline.

GO ?= go

# Packages fast enough for the -race pass: everything except the
# full-evaluation integration tests in internal/experiments (~15s without
# -race, several minutes with it).
FAST_PKGS = $$($(GO) list ./... | grep -v internal/experiments)

.PHONY: all build vet test race bench fmt fmt-check ci

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(FAST_PKGS)

# One-iteration benchmark smoke: catches benchmarks that no longer compile
# or crash without paying for stable measurements.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

ci: fmt-check build vet test race bench
