# Local and CI entry points. CI (.github/workflows/ci.yml) invokes exactly
# these targets, so a green `make ci` locally predicts a green pipeline.

GO ?= go

# Packages fast enough for the -race pass: everything except the
# full-evaluation integration tests in internal/experiments (~15s without
# -race, several minutes with it). internal/tiered is deliberately in this
# set: its concurrent serve + migration-daemon stress tests are the whole
# point of running under the race detector.
FAST_PKGS = $$($(GO) list ./... | grep -v internal/experiments)

.PHONY: all build vet test race bench fmt fmt-check tierd-smoke ci

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(FAST_PKGS)

# One-iteration benchmark smoke: catches benchmarks that no longer compile
# or crash without paying for stable measurements.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Online-engine smoke: verify single-goroutine equivalence against the
# reference simulator, then serve a short concurrent closed-loop run and
# emit the results artifact.
tierd-smoke:
	$(GO) run ./cmd/tierd -workload bodytrack -scale 0.05 -goroutines 4 -ops 300000 -verify -json -out tierd.json

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

ci: fmt-check build vet test race bench tierd-smoke
