// Command hybridsim runs one workload under one memory-management policy and
// prints the complete evaluation: event counts, the Table I probabilities,
// the AMAT breakdown (Eq. 1), the APPR breakdown (Eqs. 2-3), the NVM write
// sources and the endurance estimate.
//
// Usage:
//
//	hybridsim -workload canneal [-policy proposed|adaptive|clock-dwf|dram-cache|dram-only|nvm-only]
//	          [-scale 0.02] [-seed 1] [-read-threshold 96] [-write-threshold 128]
//	          [-read-perc 0.1] [-write-perc 0.3] [-dram-frac 0.1] [-word-granularity]
package main

import (
	"flag"
	"fmt"
	"os"

	"hybridmem/internal/clockdwf"
	"hybridmem/internal/core"
	"hybridmem/internal/dramcache"
	"hybridmem/internal/experiments"
	"hybridmem/internal/memspec"
	"hybridmem/internal/model"
	"hybridmem/internal/policy"
	"hybridmem/internal/sim"
	"hybridmem/internal/trace"
	"hybridmem/internal/workload"
)

func main() {
	wl := flag.String("workload", "canneal", "Table III workload name")
	pol := flag.String("policy", "proposed", "proposed, adaptive, clock-dwf, dram-cache, dram-only or nvm-only")
	scale := flag.Float64("scale", 0.02, "trace scale")
	seed := flag.Int64("seed", 1, "trace seed")
	readThr := flag.Int("read-threshold", 0, "proposed: read threshold (0 = default)")
	writeThr := flag.Int("write-threshold", 0, "proposed: write threshold (0 = default)")
	readPerc := flag.Float64("read-perc", 0, "proposed: read window fraction (0 = default)")
	writePerc := flag.Float64("write-perc", 0, "proposed: write window fraction (0 = default)")
	dramFrac := flag.Float64("dram-frac", 0.10, "hybrid DRAM share of total memory")
	word := flag.Bool("word-granularity", false, "account accesses as 4B words (PageFactor 1024)")
	flag.Parse()

	if err := run(*wl, *pol, *scale, *seed, *readThr, *writeThr, *readPerc, *writePerc, *dramFrac, *word); err != nil {
		fmt.Fprintln(os.Stderr, "hybridsim:", err)
		os.Exit(1)
	}
}

func run(wl, pol string, scale float64, seed int64, readThr, writeThr int,
	readPerc, writePerc, dramFrac float64, word bool) error {
	spec, ok := workload.ByName(wl)
	if !ok {
		return fmt.Errorf("unknown workload %q (have: %v)", wl, workload.Names())
	}
	cfg := experiments.DefaultConfig()
	cfg.Scale = scale
	cfg.Seed = seed
	cfg.Sizing.DRAMFractionOfMem = dramFrac
	if word {
		cfg.Spec.Geometry = memspec.WordGeometry()
	}
	if readThr > 0 {
		cfg.Core.ReadThreshold = readThr
	}
	if writeThr > 0 {
		cfg.Core.WriteThreshold = writeThr
	}
	if readPerc > 0 {
		cfg.Core.ReadPerc = readPerc
	}
	if writePerc > 0 {
		cfg.Core.WritePerc = writePerc
	}

	gen, err := workload.NewGenerator(spec, scale, seed)
	if err != nil {
		return err
	}
	warm, err := trace.Materialize(gen.WarmupSource(seed+1), 0)
	if err != nil {
		return err
	}
	roi, err := trace.Materialize(gen, 0)
	if err != nil {
		return err
	}
	pages := gen.Pages()
	total := cfg.Sizing.TotalPages(pages)
	dram, nvm := cfg.Sizing.Partition(pages)

	var p policy.Policy
	switch pol {
	case "proposed":
		p, err = core.New(dram, nvm, cfg.Core)
	case "adaptive":
		p, err = core.NewAdaptive(dram, nvm, cfg.Core, cfg.AdaptiveCfg)
	case "clock-dwf":
		p, err = clockdwf.New(dram, nvm, cfg.DWF)
	case "dram-cache":
		p, err = dramcache.New(dram, nvm, dramcache.DefaultConfig())
	case "dram-only":
		p, err = policy.NewDRAMOnly(total)
	case "nvm-only":
		p, err = policy.NewNVMOnly(total)
	default:
		return fmt.Errorf("unknown policy %q", pol)
	}
	if err != nil {
		return err
	}

	if _, err := sim.Run(trace.NewSliceSource(warm), p, cfg.Spec, sim.Options{}); err != nil {
		return fmt.Errorf("warmup: %w", err)
	}
	res, err := sim.Run(trace.NewSliceSource(roi), p, cfg.Spec, sim.Options{})
	if err != nil {
		return err
	}
	rep, err := model.Evaluate(res, cfg.Spec)
	if err != nil {
		return err
	}

	fmt.Printf("workload %s at scale %g: %d pages (%d KB footprint), %d accesses\n",
		wl, scale, pages, pages*cfg.Spec.Geometry.PageSizeBytes/1024, res.Counts.Accesses)
	fmt.Printf("memory: %d total frames", total)
	if dram > 0 && nvm > 0 && pol != "dram-only" && pol != "nvm-only" {
		fmt.Printf(" (DRAM %d + NVM %d)", dram, nvm)
	}
	fmt.Printf(", PageFactor %d\n\n", cfg.Spec.Geometry.PageFactor())

	c := res.Counts
	fmt.Printf("policy %s\n", p.Name())
	fmt.Printf("  hits:        DRAM %d (R %d / W %d), NVM %d (R %d / W %d)\n",
		c.HitsDRAM(), c.ReadsDRAM, c.WritesDRAM, c.HitsNVM(), c.ReadsNVM, c.WritesNVM)
	fmt.Printf("  faults:      %d (to DRAM %d, to NVM %d)\n", c.Faults, c.FaultsToDRAM, c.FaultsToNVM)
	fmt.Printf("  migrations:  %d promotions, %d demotions (%d fault-forced, %d promotion-forced)\n",
		c.Promotions, c.Demotions, c.DemotionsFault, c.DemotionsPromo)
	fmt.Printf("  evictions:   %d from DRAM, %d from NVM\n\n", c.EvictionsDRAM, c.EvictionsNVM)

	pr := rep.Probabilities
	fmt.Printf("Table I probabilities:\n")
	fmt.Printf("  PHitDRAM %.4f  PHitNVM %.4f  PMiss %.6f\n", pr.PHitDRAM, pr.PHitNVM, pr.PMiss)
	fmt.Printf("  PMigD %.6f  PMigN %.6f (stalling %.6f)\n\n", pr.PMigD, pr.PMigN, pr.PMigNStall)

	a := rep.AMAT
	fmt.Printf("AMAT (Eq. 1): %.1f ns/access\n", a.Total())
	fmt.Printf("  hits %.1f (DRAM %.1f + NVM %.1f), disk %.1f, migrations %.1f\n\n",
		a.HitDRAM+a.HitNVM, a.HitDRAM, a.HitNVM, a.Miss, a.Migrations())

	e := rep.APPR
	fmt.Printf("APPR (Eqs. 2-3): %.2f nJ/access\n", e.Total())
	fmt.Printf("  static %.2f, dynamic %.2f, page-fault %.2f, migration %.2f\n\n",
		e.Static, e.Dynamic(), e.PageFault(), e.Migration())

	w := rep.NVMWrites
	fmt.Printf("NVM writes (lines): %d total = %d requests + %d page-fault + %d migration\n",
		w.Total(), w.Requests, w.PageFault, w.Migration)

	if res.NVMPages > 0 && res.NVMWear.Total > 0 {
		end, err := model.EvaluateEndurance(res, cfg.Spec)
		if err == nil {
			fmt.Printf("endurance: %.1f writes/s; lifetime %.1f years (ideal leveling), %.1f years (worst frame)\n",
				end.LineWritesPerSec, end.LifetimeYearsLeveled, end.LifetimeYearsWorstFrame)
			fmt.Printf("wear imbalance (max/mean frame): %.2f\n",
				model.WearImbalance(res.NVMWear, res.NVMPages))
		}
	}

	if a, ok := p.(*core.Adaptive); ok {
		r, w := a.Thresholds()
		fmt.Printf("adaptive controller: final thresholds %d/%d after %d adjustments\n",
			r, w, a.Adjustments)
	}
	return nil
}
