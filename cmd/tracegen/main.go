// Command tracegen generates a synthetic PARSEC-like memory trace and writes
// it to a file in the binary or text trace format, optionally including the
// warmup (initialization) phase or routing the stream through the Table II
// cache hierarchy (the COTSon-substitute pipeline).
//
// Usage:
//
//	tracegen -workload ferret -o ferret.trc [-scale 0.02] [-seed 1]
//	         [-format binary|text] [-warmup] [-filtered]
//	tracegen -specs custom.json -workload myworkload -o my.trc
//
// With -specs, workload definitions are loaded from a JSON file (the format
// written by workload.SaveSpecs) instead of the built-in Table III set.
package main

import (
	"flag"
	"fmt"
	"os"

	"hybridmem/internal/fullsys"
	"hybridmem/internal/memspec"
	"hybridmem/internal/trace"
	"hybridmem/internal/workload"
)

func main() {
	wl := flag.String("workload", "", "Table III workload name")
	out := flag.String("o", "", "output file (default <workload>.trc)")
	scale := flag.Float64("scale", 0.02, "trace scale")
	seed := flag.Int64("seed", 1, "trace seed")
	format := flag.String("format", "binary", "binary or text")
	warmup := flag.Bool("warmup", false, "prepend the warmup (initialization) phase")
	filtered := flag.Bool("filtered", false, "filter through the Table II cache hierarchy")
	specsFile := flag.String("specs", "", "JSON file with custom workload specs")
	flag.Parse()

	if err := run(*wl, *out, *scale, *seed, *format, *warmup, *filtered, *specsFile); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(wl, out string, scale float64, seed int64, format string, warmup, filtered bool, specsFile string) error {
	if wl == "" {
		return fmt.Errorf("missing -workload (have: %v)", workload.Names())
	}
	var (
		spec workload.Spec
		ok   bool
	)
	if specsFile != "" {
		f, err := os.Open(specsFile)
		if err != nil {
			return err
		}
		specs, err := workload.LoadSpecs(f)
		f.Close()
		if err != nil {
			return err
		}
		for _, s := range specs {
			if s.Name == wl {
				spec, ok = s, true
			}
		}
		if !ok {
			return fmt.Errorf("workload %q not in %s", wl, specsFile)
		}
	} else {
		spec, ok = workload.ByName(wl)
		if !ok {
			return fmt.Errorf("unknown workload %q (have: %v)", wl, workload.Names())
		}
	}
	gen, err := workload.NewGenerator(spec, scale, seed)
	if err != nil {
		return err
	}

	var src trace.Source = gen
	if warmup {
		src = trace.Concat(gen.WarmupSource(seed+1), gen)
	}
	var capture *fullsys.Capture
	if filtered {
		capture, err = fullsys.New(src, memspec.DefaultMachine(), fullsys.DefaultOptions())
		if err != nil {
			return err
		}
		src = capture
	}

	if out == "" {
		out = wl + ".trc"
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()

	var n int
	switch format {
	case "binary":
		n, err = trace.WriteAll(trace.NewWriter(f), src)
	case "text":
		n, err = trace.WriteText(f, src)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	if err != nil {
		return err
	}
	if capture != nil && capture.Err() != nil {
		return capture.Err()
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d records to %s (%s)\n", n, out, format)
	if capture != nil {
		fmt.Printf("cache filter: %d CPU accesses -> %d memory accesses\n",
			capture.CPUAccesses, n)
	}
	return nil
}
