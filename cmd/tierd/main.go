// Command tierd benchmarks the online tiered-memory engine under
// concurrent closed-loop load: it replays a Table III workload trace from
// many goroutines into internal/tiered and reports throughput, service
// latency percentiles and migration activity.
//
//	go run ./cmd/tierd -workload bodytrack -goroutines 16 -duration 2s
//	go run ./cmd/tierd -workload ferret -policy clock-dwf -shards 1 -ops 500000 -json
//	go run ./cmd/tierd -verify -goroutines 1       # equivalence gate vs internal/sim
//
// With -verify, tierd first replays the trace through a single-goroutine
// synchronous engine and the reference simulator and fails unless every
// hit/fault/promotion/demotion count matches — the subsystem's equivalence
// guarantee, also enforced in CI.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"time"

	"hybridmem/internal/memspec"
	"hybridmem/internal/runner"
	"hybridmem/internal/tiered"
	"hybridmem/internal/trace"
	"hybridmem/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tierd: ")

	var (
		workloadName = flag.String("workload", "bodytrack", "Table III workload to replay")
		policyName   = flag.String("policy", string(tiered.Proposed), "migration policy (proposed, proposed-adaptive, clock-dwf)")
		scale        = flag.Float64("scale", 0.05, "trace scale (1.0 = the paper's full trace sizes)")
		seed         = flag.Int64("seed", 1, "trace generation seed")
		goroutines   = flag.Int("goroutines", runtime.GOMAXPROCS(0), "closed-loop load goroutines")
		duration     = flag.Duration("duration", 2*time.Second, "wall-clock budget (ignored when -ops is set)")
		ops          = flag.Int64("ops", 0, "total access budget (0 = run for -duration)")
		shards       = flag.Int("shards", 0, "page-table shards, rounded up to a power of two (0 = 4x GOMAXPROCS, 1 = single lock)")
		sync         = flag.Bool("sync", false, "run the reference policy inline under one lock (deterministic, no daemon)")
		verify       = flag.Bool("verify", false, "check single-goroutine equivalence against internal/sim before the run")
		jsonOut      = flag.Bool("json", false, "emit a hybridmem.results/v1 artifact instead of text")
		outPath      = flag.String("out", "", "write output to a file instead of stdout")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments %v", flag.Args())
	}

	spec, ok := workload.ByName(*workloadName)
	if !ok {
		log.Fatalf("unknown workload %q (have %v)", *workloadName, workload.Names())
	}
	gen, err := workload.NewGenerator(spec, *scale, *seed)
	if err != nil {
		log.Fatal(err)
	}
	warm, err := trace.Materialize(gen.WarmupSource(*seed+1), 0)
	if err != nil {
		log.Fatal(err)
	}
	roi, err := trace.Materialize(gen, 0)
	if err != nil {
		log.Fatal(err)
	}
	dram, nvm := memspec.DefaultSizing().Partition(gen.Pages())

	cfg := tiered.Config{
		Policy:      tiered.Kind(*policyName),
		DRAMPages:   dram,
		NVMPages:    nvm,
		Shards:      *shards,
		Synchronous: *sync,
	}

	if *verify {
		if _, err := tiered.VerifyAgainstSim(cfg, append(append([]trace.Record{}, warm...), roi...)); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "tierd: equivalence vs internal/sim: ok (%s, %d accesses)\n",
			*policyName, len(warm)+len(roi))
	}

	engine, err := tiered.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.Start(); err != nil {
		log.Fatal(err)
	}
	// Warm serially so the measured phase starts from a populated table,
	// then snapshot the counters: the report covers only the load phase.
	for _, r := range warm {
		if _, err := engine.Serve(r.Addr, r.Op); err != nil {
			log.Fatal(err)
		}
	}
	base := engine.Stats()

	loadCfg := tiered.LoadConfig{Goroutines: *goroutines, Ops: *ops}
	if *ops <= 0 {
		loadCfg.Duration = *duration
	}
	rep, err := tiered.RunLoad(engine, roi, loadCfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.Stop(); err != nil {
		log.Fatal(err)
	}
	st := engine.Stats().Sub(base)

	w := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	if *jsonOut {
		err = writeArtifact(w, engine, rep, st, *workloadName, *scale, *seed, *goroutines, *sync)
	} else {
		err = writeText(w, engine, rep, st, *workloadName, dram, nvm, *goroutines)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func writeText(w io.Writer, e *tiered.Engine, rep *tiered.LoadReport, st tiered.Stats,
	name string, dram, nvm, goroutines int) error {
	shards := e.Config().Shards
	_, err := fmt.Fprintf(w, `tierd: %s under %s, DRAM %d + NVM %d frames, %d shards, %d goroutines
throughput: %12.0f ops/s (%d ops in %v)
latency:    p50 %v, p95 %v, p99 %v, max %v
placement:  %.1f%% DRAM hits, %.1f%% NVM hits, %d faults
migration:  %d promotions, %d demotions (%d fault, %d promo), %d evictions
daemon:     %d scans, %d batches, %d queue drops
`,
		name, e.PolicyName(), dram, nvm, shards, goroutines,
		rep.OpsPerSec, rep.Ops, rep.Elapsed.Round(time.Millisecond),
		rep.P50, rep.P95, rep.P99, rep.Max,
		pct(st.HitsDRAM(), st.Accesses), pct(st.HitsNVM(), st.Accesses), st.Faults,
		st.Promotions, st.Demotions, st.DemotionsFault, st.DemotionsPromo, st.Evictions,
		st.Scans, st.Batches, st.QueueDrops)
	return err
}

func pct(part, whole int64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

func writeArtifact(w io.Writer, e *tiered.Engine, rep *tiered.LoadReport, st tiered.Stats,
	name string, scale float64, seed int64, goroutines int, sync bool) error {
	a := runner.NewArtifact("tierd", "serve", scale, seed)
	cfg := e.Config()
	syncVal := 0.0
	if sync {
		syncVal = 1
	}
	a.Add(runner.Result{
		ID:        fmt.Sprintf("%s/%s/g%d", name, e.PolicyName(), goroutines),
		Workload:  name,
		Policy:    e.PolicyName(),
		Seed:      seed,
		DRAMPages: cfg.DRAMPages,
		NVMPages:  cfg.NVMPages,
		Params: map[string]float64{
			"goroutines": float64(goroutines),
			"shards":     float64(cfg.Shards),
			"sync":       syncVal,
		},
		Values: map[string]float64{
			"ops":            float64(rep.Ops),
			"ops_per_sec":    rep.OpsPerSec,
			"p50_ns":         float64(rep.P50.Nanoseconds()),
			"p95_ns":         float64(rep.P95.Nanoseconds()),
			"p99_ns":         float64(rep.P99.Nanoseconds()),
			"max_ns":         float64(rep.Max.Nanoseconds()),
			"hits_dram":      float64(st.HitsDRAM()),
			"hits_nvm":       float64(st.HitsNVM()),
			"faults":         float64(st.Faults),
			"promotions":     float64(st.Promotions),
			"demotions":      float64(st.Demotions),
			"evictions":      float64(st.Evictions),
			"scans":          float64(st.Scans),
			"batches":        float64(st.Batches),
			"queue_drops":    float64(st.QueueDrops),
			"break_even_hit": float64(tiered.BreakEvenHits(cfg.Spec)),
		},
	})
	return a.Write(w)
}
