// Command tierd benchmarks the online tiered-memory engine under
// concurrent closed-loop load: it replays Table III workload traces from
// many goroutines into internal/tiered and reports throughput, service
// latency percentiles and migration activity.
//
//	go run ./cmd/tierd -workload bodytrack -goroutines 16 -duration 2s
//	go run ./cmd/tierd -workload ferret -policy clock-dwf -shards 1 -ops 500000 -json
//	go run ./cmd/tierd -verify -goroutines 1       # equivalence gate vs internal/sim
//	go run ./cmd/tierd -tenants 'bodytrack:40,canneal:30,ferret:30' -duration 2s
//	go run ./cmd/tierd -numa nodes=2,remote-penalty=1.8 -duration 2s
//	go run ./cmd/tierd -serve 127.0.0.1:6380 -workload bodytrack       # RESP server
//	go run ./cmd/tierd -connect 127.0.0.1:6380 -connections 4 -pipeline 16 -duration 5s
//
// With -verify, tierd first replays the trace through a single-goroutine
// synchronous engine and the reference simulator and fails unless every
// hit/fault/promotion/demotion count matches — the subsystem's equivalence
// guarantee, also enforced in CI.
//
// With -tenants, tierd serves N isolated tenants concurrently — the live
// form of the paper's consolidated `mix` study. Each list entry is
// workload:percent; the percent is the tenant's share of DRAM as its
// dedicated quota, and any share not covered (the list may total less
// than 100) becomes the spill pool all tenants may borrow from. Tenants
// get distinct trace seeds and their own goroutines, and the report (text
// or artifact) breaks out per-tenant throughput, latency percentiles and
// quota occupancy.
//
// With -numa, tierd emulates an N-socket machine: DRAM and NVM split into
// per-node pools (even shares), shard groups homed per node, one migration
// pipeline per node, and placement that prefers a page's home node —
// going remote only when the home pool is exhausted. The report adds a
// per-node breakdown (ops for pages homed there, DRAM/NVM occupancy,
// local-vs-remote faults/promotions/demotions) plus the local and remote
// migration break-even figures derived from the remote penalty, and the
// artifact gains one row per node.
//
// With -memstats (on by default), tierd snapshots runtime.MemStats around
// the measured load phase and reports the process-wide allocation rate
// (allocs/op and B/op across every access served) and the GC activity the
// load induced (cycles and total stop-the-world pause). The serve hit path
// is allocation-free by design, so a non-trivial allocs/op here is a
// regression signal; the numbers ride along in the results/v1 artifact
// (allocs_per_op, alloc_bytes_per_op, gc_cycles, gc_pause_total_ns) so CI
// load runs expose allocation creep, not just latency creep. -memstats=false
// drops the collection (two runtime.ReadMemStats stop-the-world points).
//
// With -serve, tierd becomes a RESP (redis-protocol) server over the
// engine: remote clients generate the load instead of in-process
// goroutines, AUTH binds connections to tenants, and SIGINT/SIGTERM
// (both handled identically) triggers a graceful drain whose cleanliness
// is recorded in the artifact; a second SIGINT/SIGTERM while the drain is
// in progress forces an immediate exit with status 130, skipping the
// final checkpoint. With -connect, tierd is the benchmarking client: it
// replays the workload trace over -connections pipelined connections,
// closed-loop or open-loop at a target -rate, and reports batch
// round-trip percentiles plus the server's own counters fetched over
// STATS. See docs/protocol.md for the wire protocol.
//
// With -persist (serve mode), tierd checkpoints the NVM tier's residency
// and hotness into <dir> every -checkpoint-interval and once more during
// the drain: a full base snapshot (checkpoint.ckpt) every
// -checkpoint-full-every cuts and O(dirty) delta cuts (delta-*.ckpt)
// carrying only the changed pages in between. On restart tierd replays
// base + deltas before serving data: the RESP listener comes up
// immediately but answers data commands with -LOADING (and /readyz stays
// not-ready) until the restore finishes, after which the restored-hot
// pages are re-promoted as a rate-limited warm-up through the migration
// daemon — or, with -warmup-dram-topk, the hottest K are placed straight
// into DRAM before serving. The client-side recovery KPI for that
// warm-up is -kpi: the client samples the server's cumulative hit rate
// (accesses served from resident memory rather than faulted in, plus the
// DRAM-only variant) over STATS and reports the time it took to reach
// 90% of its steady-state value (kpi_t90_ms / kpi_dram_t90_ms in the
// artifact). See docs/persistence.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"hybridmem/internal/memspec"
	"hybridmem/internal/obs"
	"hybridmem/internal/runner"
	"hybridmem/internal/tiered"
	"hybridmem/internal/trace"
	"hybridmem/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tierd: ")

	var (
		workloadName = flag.String("workload", "bodytrack", "Table III workload to replay (single-tenant mode)")
		tenantsSpec  = flag.String("tenants", "", `multi-tenant mode: comma-separated workload:percent list, e.g. "bodytrack:40,canneal:30,ferret:30"; each percent is the tenant's DRAM quota share, the uncovered remainder is the shared spill pool`)
		policyName   = flag.String("policy", string(tiered.Proposed), "migration policy (proposed, proposed-adaptive, clock-dwf)")
		scale        = flag.Float64("scale", 0.05, "trace scale (1.0 = the paper's full trace sizes)")
		seed         = flag.Int64("seed", 1, "trace generation seed (tenant i uses seed+i)")
		goroutines   = flag.Int("goroutines", runtime.GOMAXPROCS(0), "closed-loop load goroutines (split across tenants in multi-tenant mode)")
		duration     = flag.Duration("duration", 2*time.Second, "wall-clock budget (ignored when -ops is set)")
		ops          = flag.Int64("ops", 0, "total access budget (0 = run for -duration)")
		batch        = flag.Int("batch", 1, "serve accesses through the engine batch API in groups of this size (1 = one ServeTenant call per access) — the A/B lever for measuring batch amortization")
		shards       = flag.Int("shards", 0, "page-table shards, rounded up to a power of two (0 = 4x GOMAXPROCS, 1 = single lock)")
		numaSpec     = flag.String("numa", "", `NUMA emulation: "nodes=N[,remote-penalty=X]" splits DRAM and NVM into N per-node pools (even split, shard groups homed per node) and reports per-node ops, occupancy and local-vs-remote migrations`)
		sync         = flag.Bool("sync", false, "run the reference policy inline under one lock (deterministic, no daemon)")
		verify       = flag.Bool("verify", false, "check single-goroutine equivalence against internal/sim before the run")
		jsonOut      = flag.Bool("json", false, "emit a hybridmem.results/v1 artifact instead of text")
		outPath      = flag.String("out", "", "write output to a file instead of stdout")
		memStats     = flag.Bool("memstats", true, "report load-phase allocs/op and GC pause totals (runtime.ReadMemStats deltas)")

		serveAddr   = flag.String("serve", "", `RESP server mode: listen on this address (e.g. "127.0.0.1:6380") and serve remote clients until SIGINT/SIGTERM; sizing comes from -workload or -tenants`)
		connectAddr = flag.String("connect", "", "benchmark client mode: replay the -workload trace over RESP against a running tierd -serve at this address")
		connections = flag.Int("connections", 4, "client mode: concurrent connections")
		pipeline    = flag.Int("pipeline", 16, "client mode: pipelined commands per batch")
		clientMode  = flag.String("client-mode", "closed", `client mode pacing: "closed" (next batch when the previous is answered) or "open" (fixed schedule from -rate; lateness counts as latency)`)
		rate        = flag.Float64("rate", 0, "client mode, open loop: target total ops/s across all connections")
		authToken   = flag.String("auth", "", "client mode: AUTH token sent on each connection (a tenant name, e.g. \"default\")")
		maxConns    = flag.Int("max-conns", 0, "serve mode: connection cap; accepting past it evicts the least-recently-active connection (0 = server default)")
		idleTimeout = flag.Duration("idle-timeout", 0, "serve mode: reap connections idle this long (0 = server default, negative disables)")
		requireAuth = flag.Bool("require-auth", false, "serve mode: reject data commands until a successful AUTH")
		persistDir  = flag.String("persist", "", "serve mode: checkpoint the NVM tier's residency into this directory and restore it on restart (data commands answer -LOADING until the restore finishes)")
		ckptEvery   = flag.Duration("checkpoint-interval", time.Second, "serve mode with -persist: background checkpoint period")
		ckptFull    = flag.Int("checkpoint-full-every", 8, "serve mode with -persist: cut a full snapshot every Nth checkpoint and O(dirty) delta cuts in between (1 = every cut full)")
		warmupTopK  = flag.Int("warmup-dram-topk", 0, "serve mode with -persist: restore up to this many of the hottest checkpoint-warm pages directly into DRAM before serving (0 = storm-only warm-up)")
		kpi         = flag.Bool("kpi", false, "client mode: sample the server's hit rate over STATS and report time-to-90%-of-steady-state (the recovery KPI)")

		adminAddr = flag.String("admin", "", `admin plane: HTTP listen address (e.g. "127.0.0.1:6060") exposing /metrics (Prometheus text), /healthz, /readyz, /events (migration trace ring) and /debug/pprof; works in -serve and the in-process load modes`)
		pprofCont = flag.Bool("pprof-contention", false, "admin plane: enable mutex and block profiling (adds sampling overhead; off by default)")
		traceRing = flag.Int("trace-ring", obs.DefaultRingSize, "admin plane: migration trace ring capacity in events (rounded up to a power of two); size it above the run's expected migration count to keep the whole trace")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments %v", flag.Args())
	}
	if *goroutines <= 0 {
		log.Fatalf("-goroutines must be positive, got %d", *goroutines)
	}
	if *scale <= 0 {
		log.Fatalf("-scale must be positive, got %g", *scale)
	}
	if *ops < 0 {
		log.Fatalf("-ops must be non-negative, got %d", *ops)
	}
	if *batch < 1 {
		log.Fatalf("-batch must be at least 1, got %d", *batch)
	}
	if *batch > 1 && *sync {
		log.Fatal("-batch is incompatible with -sync (the batch API rejects synchronous engines)")
	}
	if !tiered.ValidKind(tiered.Kind(*policyName)) {
		log.Fatalf("unknown -policy %q (have %v)", *policyName, tiered.Kinds())
	}
	numa, err := parseNUMA(*numaSpec)
	if err != nil {
		log.Fatal(err)
	}
	admin := adminFlags{addr: *adminAddr, profiles: *pprofCont, ringSize: *traceRing}
	if admin.profiles && admin.addr == "" {
		log.Fatal("-pprof-contention requires -admin (the profiles are served there)")
	}
	if numa.nodes > 1 && (*sync || *verify) {
		log.Fatal("-numa is incompatible with -sync and -verify (sim equivalence is defined on the single-node machine)")
	}

	if *serveAddr != "" || *connectAddr != "" {
		if *serveAddr != "" && *connectAddr != "" {
			log.Fatal("-serve and -connect are mutually exclusive (run them as two processes)")
		}
		if *sync || *verify {
			log.Fatal("-serve and -connect are incompatible with -sync and -verify")
		}
		nf := netFlags{
			serveAddr:     *serveAddr,
			connectAddr:   *connectAddr,
			connections:   *connections,
			pipeline:      *pipeline,
			openLoop:      *clientMode == "open",
			rate:          *rate,
			auth:          *authToken,
			maxConns:      *maxConns,
			idleTimeout:   *idleTimeout,
			requireAuth:   *requireAuth,
			persistDir:    *persistDir,
			ckptInterval:  *ckptEvery,
			ckptFullEvery: *ckptFull,
			warmupTopK:    *warmupTopK,
			kpi:           *kpi,
			admin:         admin,
		}
		if *clientMode != "open" && *clientMode != "closed" {
			log.Fatalf("-client-mode %q unknown (have open, closed)", *clientMode)
		}
		if *persistDir != "" && *serveAddr == "" {
			log.Fatal("-persist requires -serve (the server owns the checkpoint)")
		}
		if *ckptEvery <= 0 {
			log.Fatal("-checkpoint-interval must be positive")
		}
		if *ckptFull < 1 {
			log.Fatal("-checkpoint-full-every must be at least 1")
		}
		if *warmupTopK < 0 {
			log.Fatal("-warmup-dram-topk must be non-negative")
		}
		if *kpi && *connectAddr == "" {
			log.Fatal("-kpi requires -connect (the KPI is sampled client-side)")
		}
		if *serveAddr != "" {
			runServe(nf, *outPath, *workloadName, *tenantsSpec, *policyName, *scale, *seed, *shards, numa, *jsonOut)
		} else {
			runConnect(nf, *outPath, *workloadName, *scale, *seed, *duration, *ops, *jsonOut)
		}
		return
	}

	if *tenantsSpec != "" {
		if *sync || *verify {
			log.Fatal("-tenants is incompatible with -sync and -verify (the reference policies are single-tenant)")
		}
		runMultiTenant(*outPath, *tenantsSpec, *policyName, *scale, *seed, *goroutines, *duration, *ops, *batch, *shards, numa, admin, *jsonOut, *memStats)
		return
	}
	runSingleTenant(*outPath, *workloadName, *policyName, *scale, *seed, *goroutines, *duration, *ops, *batch, *shards, numa, admin, *sync, *verify, *jsonOut, *memStats)
}

// numaFlags is the parsed -numa emulation spec.
type numaFlags struct {
	nodes   int
	penalty float64
}

// parseNUMA parses "nodes=N[,remote-penalty=X]". Empty means a single
// uniform node (the paper's machine).
func parseNUMA(spec string) (numaFlags, error) {
	n := numaFlags{nodes: 1}
	if spec == "" {
		return n, nil
	}
	for _, part := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return n, fmt.Errorf("-numa entry %q is not key=value", part)
		}
		switch k {
		case "nodes":
			nodes, err := strconv.Atoi(v)
			if err != nil || nodes < 1 {
				return n, fmt.Errorf("-numa nodes=%q: need a positive integer", v)
			}
			n.nodes = nodes
		case "remote-penalty":
			p, err := strconv.ParseFloat(v, 64)
			if err != nil || p < 1 {
				return n, fmt.Errorf("-numa remote-penalty=%q: need a factor >= 1", v)
			}
			n.penalty = p
		default:
			return n, fmt.Errorf("-numa key %q unknown (have nodes, remote-penalty)", k)
		}
	}
	return n, nil
}

// topology builds the engine topology for the parsed flags: an even
// per-node split of the zone capacities.
func (n numaFlags) topology(dram, nvm int) tiered.Topology {
	if n.nodes <= 1 && n.penalty == 0 {
		return tiered.Topology{} // the single-node default
	}
	t := tiered.EvenTopology(n.nodes, dram, nvm)
	t.RemotePenalty = n.penalty
	return t
}

// nodeDeltas subtracts a baseline NodeStats snapshot, so reports cover
// only the measured load phase.
func nodeDeltas(after, before []tiered.NodeStats) []tiered.NodeStats {
	out := make([]tiered.NodeStats, len(after))
	for i := range after {
		out[i] = after[i].Sub(before[i])
	}
	return out
}

// writeNodeText renders the per-node report lines (nothing on a single
// node, where the aggregate lines already tell the whole story).
func writeNodeText(w io.Writer, e *tiered.Engine, nodes []tiered.NodeStats) error {
	if e.NumNodes() <= 1 {
		return nil
	}
	topo := e.Topology()
	spec := e.Config().Spec
	if _, err := fmt.Fprintf(w, "numa:       %d nodes, remote penalty %.2fx, break-even %d local / %d remote hits\n",
		e.NumNodes(), topo.RemotePenalty, tiered.BreakEvenHits(spec), topo.BreakEvenHitsRemote(spec)); err != nil {
		return err
	}
	for _, ns := range nodes {
		_, err := fmt.Fprintf(w, "node %d:     %d/%d DRAM, %d/%d NVM frames; %d ops; faults %d local / %d remote; promotions %d/%d; demotions %d/%d\n",
			ns.ID, ns.ResidentDRAM, ns.DRAMPages, ns.ResidentNVM, ns.NVMPages, ns.Accesses,
			ns.FaultsLocal, ns.FaultsRemote,
			ns.PromotionsLocal, ns.PromotionsRemote,
			ns.DemotionsLocal, ns.DemotionsRemote)
		if err != nil {
			return err
		}
	}
	return nil
}

// addNodeResults appends one artifact row per node (multi-node runs only).
func addNodeResults(a *runner.Artifact, e *tiered.Engine, nodes []tiered.NodeStats, seed int64) {
	if e.NumNodes() <= 1 {
		return
	}
	cfg := e.Config()
	for _, ns := range nodes {
		a.Add(runner.Result{
			ID:        fmt.Sprintf("node%d/%s", ns.ID, e.PolicyName()),
			Workload:  "node",
			Policy:    e.PolicyName(),
			Seed:      seed,
			DRAMPages: int(ns.DRAMPages),
			NVMPages:  int(ns.NVMPages),
			Params: map[string]float64{
				"node":           float64(ns.ID),
				"nodes":          float64(e.NumNodes()),
				"remote_penalty": cfg.Topology.RemotePenalty,
			},
			Values: map[string]float64{
				"ops":               float64(ns.Accesses),
				"resident_dram":     float64(ns.ResidentDRAM),
				"resident_nvm":      float64(ns.ResidentNVM),
				"faults_local":      float64(ns.FaultsLocal),
				"faults_remote":     float64(ns.FaultsRemote),
				"promotions_local":  float64(ns.PromotionsLocal),
				"promotions_remote": float64(ns.PromotionsRemote),
				"demotions_local":   float64(ns.DemotionsLocal),
				"demotions_remote":  float64(ns.DemotionsRemote),
			},
		})
	}
}

// memReport is the load phase's process-wide allocation and GC delta,
// measured as runtime.MemStats differences around the measured window.
// The serve hit path allocates nothing, so AllocsPerOp on a healthy run is
// a small fraction (daemon batches, histograms, fault-path entries).
type memReport struct {
	enabled     bool
	allocsPerOp float64
	bytesPerOp  float64
	gcCycles    uint32
	gcPause     time.Duration
}

// memDelta summarizes the load window between two MemStats snapshots.
func memDelta(before, after runtime.MemStats, ops int64) memReport {
	m := memReport{
		enabled:  true,
		gcCycles: after.NumGC - before.NumGC,
		gcPause:  time.Duration(after.PauseTotalNs - before.PauseTotalNs),
	}
	if ops > 0 {
		m.allocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(ops)
		m.bytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / float64(ops)
	}
	return m
}

// values folds the memory report into an artifact value map.
func (m memReport) values(v map[string]float64) map[string]float64 {
	if !m.enabled {
		return v
	}
	v["allocs_per_op"] = m.allocsPerOp
	v["alloc_bytes_per_op"] = m.bytesPerOp
	v["gc_cycles"] = float64(m.gcCycles)
	v["gc_pause_total_ns"] = float64(m.gcPause.Nanoseconds())
	return v
}

// text renders the memory report's human line (empty when disabled).
func (m memReport) text() string {
	if !m.enabled {
		return ""
	}
	return fmt.Sprintf("memory:     %.3f allocs/op, %.1f B/op, GC %d cycles, %v total pause\n",
		m.allocsPerOp, m.bytesPerOp, m.gcCycles, m.gcPause)
}

// writeOut runs write against stdout or the -out file. The file is only
// created here, after the run has succeeded, so a failed run never
// truncates a previous artifact.
func writeOut(outPath string, write func(io.Writer) error) {
	if outPath == "" {
		if err := write(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	f, err := os.Create(outPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := write(f); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}

// genTenantTrace materializes one workload's warmup and ROI traces.
func genTenantTrace(name string, scale float64, seed int64) (warm, roi []trace.Record, pages int) {
	spec, ok := workload.ByName(name)
	if !ok {
		log.Fatalf("unknown workload %q (have %v)", name, workload.Names())
	}
	gen, err := workload.NewGenerator(spec, scale, seed)
	if err != nil {
		log.Fatal(err)
	}
	warm, err = trace.Materialize(gen.WarmupSource(seed+1), 0)
	if err != nil {
		log.Fatal(err)
	}
	roi, err = trace.Materialize(gen, 0)
	if err != nil {
		log.Fatal(err)
	}
	return warm, roi, gen.Pages()
}

func runSingleTenant(outPath, workloadName, policyName string, scale float64, seed int64,
	goroutines int, duration time.Duration, ops int64, batch, shards int, numa numaFlags,
	admin adminFlags, sync, verify, jsonOut, memStats bool) {
	warm, roi, pages := genTenantTrace(workloadName, scale, seed)
	dram, nvm := memspec.DefaultSizing().Partition(pages)

	ring := admin.ring()
	cfg := tiered.Config{
		Policy:      tiered.Kind(policyName),
		DRAMPages:   dram,
		NVMPages:    nvm,
		Shards:      shards,
		Topology:    numa.topology(dram, nvm),
		Synchronous: sync,
		Events:      ring,
	}

	if verify {
		if _, err := tiered.VerifyAgainstSim(cfg, append(append([]trace.Record{}, warm...), roi...)); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "tierd: equivalence vs internal/sim: ok (%s, %d accesses)\n",
			policyName, len(warm)+len(roi))
	}

	engine, err := tiered.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.Start(); err != nil {
		log.Fatal(err)
	}
	adm := startAdmin(admin, engine, nil, ring, nil, nil, scale, seed)
	// Warm serially so the measured phase starts from a populated table,
	// then snapshot the counters: the report covers only the load phase.
	for _, r := range warm {
		if _, err := engine.Serve(r.Addr, r.Op); err != nil {
			log.Fatal(err)
		}
	}
	base := engine.Stats()
	nodeBase := engine.NodeStats()

	loadCfg := tiered.LoadConfig{Goroutines: goroutines, Ops: ops, Batch: batch}
	if ops <= 0 {
		loadCfg.Duration = duration
	}
	var msBefore, msAfter runtime.MemStats
	if memStats {
		runtime.ReadMemStats(&msBefore)
	}
	rep, err := tiered.RunLoad(engine, roi, loadCfg)
	if err != nil {
		log.Fatal(err)
	}
	if memStats {
		runtime.ReadMemStats(&msAfter)
	}
	if err := engine.Stop(); err != nil {
		log.Fatal(err)
	}
	stopAdmin(adm)
	st := engine.Stats().Sub(base)
	nodes := nodeDeltas(engine.NodeStats(), nodeBase)
	var mem memReport
	if memStats {
		mem = memDelta(msBefore, msAfter, rep.Ops)
	}

	writeOut(outPath, func(w io.Writer) error {
		if jsonOut {
			return writeArtifact(w, engine, rep, st, nodes, mem, workloadName, scale, seed, goroutines, sync)
		}
		return writeText(w, engine, rep, st, nodes, mem, workloadName, dram, nvm, goroutines)
	})
}

// tenantShare is one parsed -tenants entry.
type tenantShare struct {
	workload string
	percent  int
}

// parseTenants parses a "workload:percent,..." spec. Percents must be
// positive and total at most 100; the uncovered remainder becomes the
// shared spill pool.
func parseTenants(spec string) ([]tenantShare, error) {
	var shares []tenantShare
	sum := 0
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		name, pctStr, ok := strings.Cut(part, ":")
		if !ok || name == "" {
			return nil, fmt.Errorf("tenant entry %q is not workload:percent", part)
		}
		pct, err := strconv.Atoi(strings.TrimSuffix(pctStr, "%"))
		if err != nil {
			return nil, fmt.Errorf("tenant entry %q: bad percent: %v", part, err)
		}
		if pct <= 0 {
			return nil, fmt.Errorf("tenant entry %q: percent must be positive", part)
		}
		sum += pct
		shares = append(shares, tenantShare{workload: name, percent: pct})
	}
	if sum > 100 {
		return nil, fmt.Errorf("tenant quota shares total %d%%, must be at most 100%%", sum)
	}
	return shares, nil
}

// tenantRun is one tenant's full setup and outcome.
type tenantRun struct {
	id         tiered.TenantID
	workload   string
	percent    int
	seed       int64
	goroutines int
	warm, roi  []trace.Record
	report     tiered.LoadReport
	stats      tiered.TenantStats
}

func runMultiTenant(outPath, spec, policyName string, scale float64, seed int64,
	goroutines int, duration time.Duration, ops int64, batch, shards int, numa numaFlags,
	admin adminFlags, jsonOut, memStats bool) {
	shares, err := parseTenants(spec)
	if err != nil {
		log.Fatal(err)
	}

	runs := make([]*tenantRun, len(shares))
	totalPages := 0
	for i, sh := range shares {
		tenantSeed := seed + int64(i)
		warm, roi, pages := genTenantTrace(sh.workload, scale, tenantSeed)
		totalPages += pages
		runs[i] = &tenantRun{
			id:       tiered.TenantID(i),
			workload: sh.workload,
			percent:  sh.percent,
			seed:     tenantSeed,
			warm:     warm,
			roi:      roi,
		}
	}
	dram, nvm := memspec.DefaultSizing().Partition(totalPages)

	tenants := make([]tiered.TenantConfig, len(runs))
	for i, r := range runs {
		tenants[i] = tiered.TenantConfig{
			ID:        r.id,
			Name:      fmt.Sprintf("%d:%s", r.id, r.workload),
			DRAMQuota: dram * r.percent / 100,
		}
		// Split the goroutine budget round-robin, at least one each.
		r.goroutines = goroutines / len(runs)
		if i < goroutines%len(runs) {
			r.goroutines++
		}
		if r.goroutines == 0 {
			r.goroutines = 1
		}
	}

	ring := admin.ring()
	engine, err := tiered.New(tiered.Config{
		Policy:    tiered.Kind(policyName),
		DRAMPages: dram,
		NVMPages:  nvm,
		Shards:    shards,
		Topology:  numa.topology(dram, nvm),
		Tenants:   tenants,
		Events:    ring,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.Start(); err != nil {
		log.Fatal(err)
	}
	adm := startAdmin(admin, engine, nil, ring, nil, nil, scale, seed)
	// Warm each tenant serially, then snapshot: the report covers only
	// the concurrent load phase.
	for _, r := range runs {
		for _, rec := range r.warm {
			if _, err := engine.ServeTenant(r.id, rec.Addr, rec.Op); err != nil {
				log.Fatal(err)
			}
		}
	}
	base := engine.Stats()
	nodeBase := engine.NodeStats()
	tenantBase := make([]tiered.TenantStats, len(runs))
	for i, r := range runs {
		tenantBase[i], _ = engine.TenantStats(r.id)
	}

	loads := make([]tiered.TenantLoad, len(runs))
	for i, r := range runs {
		loads[i] = tiered.TenantLoad{Tenant: r.id, Recs: r.roi, Goroutines: r.goroutines}
	}
	loadCfg := tiered.LoadConfig{Ops: ops, Batch: batch}
	if ops <= 0 {
		loadCfg.Duration = duration
	}
	var msBefore, msAfter runtime.MemStats
	if memStats {
		runtime.ReadMemStats(&msBefore)
	}
	rep, err := tiered.RunTenantLoad(engine, loads, loadCfg)
	if err != nil {
		log.Fatal(err)
	}
	if memStats {
		runtime.ReadMemStats(&msAfter)
	}
	if err := engine.Stop(); err != nil {
		log.Fatal(err)
	}
	stopAdmin(adm)
	st := engine.Stats().Sub(base)
	nodes := nodeDeltas(engine.NodeStats(), nodeBase)
	var mem memReport
	if memStats {
		mem = memDelta(msBefore, msAfter, rep.Aggregate.Ops)
	}
	for i, r := range runs {
		cur, _ := engine.TenantStats(r.id)
		r.stats = cur.Sub(tenantBase[i])
		r.report = rep.Tenants[i].Report
	}

	writeOut(outPath, func(w io.Writer) error {
		if jsonOut {
			return writeTenantArtifact(w, engine, runs, rep, st, nodes, mem, scale, seed)
		}
		return writeTenantText(w, engine, runs, rep, st, nodes, mem, dram, nvm)
	})
}

func writeText(w io.Writer, e *tiered.Engine, rep *tiered.LoadReport, st tiered.Stats,
	nodes []tiered.NodeStats, mem memReport, name string, dram, nvm, goroutines int) error {
	shards := e.Config().Shards
	_, err := fmt.Fprintf(w, `tierd: %s under %s, DRAM %d + NVM %d frames, %d shards, %d goroutines
throughput: %12.0f ops/s (%d ops in %v)
latency:    p50 %v, p95 %v, p99 %v, max %v
placement:  %.1f%% DRAM hits, %.1f%% NVM hits, %d faults
migration:  %d promotions, %d demotions (%d fault, %d promo), %d evictions
daemon:     %d scans, %d batches, %d queue drops
%s`,
		name, e.PolicyName(), dram, nvm, shards, goroutines,
		rep.OpsPerSec, rep.Ops, rep.Elapsed.Round(time.Millisecond),
		rep.P50, rep.P95, rep.P99, rep.Max,
		pct(st.HitsDRAM(), st.Accesses), pct(st.HitsNVM(), st.Accesses), st.Faults,
		st.Promotions, st.Demotions, st.DemotionsFault, st.DemotionsPromo, st.Evictions,
		st.Scans, st.Batches, st.QueueDrops, mem.text())
	if err != nil {
		return err
	}
	return writeNodeText(w, e, nodes)
}

func writeTenantText(w io.Writer, e *tiered.Engine, runs []*tenantRun, rep *tiered.MultiLoadReport,
	st tiered.Stats, nodes []tiered.NodeStats, mem memReport, dram, nvm int) error {
	agg := rep.Aggregate
	_, err := fmt.Fprintf(w, `tierd: %d tenants under %s, DRAM %d + NVM %d frames (%d spill), %d shards
aggregate:  %12.0f ops/s (%d ops in %v), p50 %v, p99 %v
migration:  %d promotions, %d demotions, %d evictions; %d scans, %d batches, %d queue drops
%s`,
		len(runs), e.PolicyName(), dram, nvm, e.SpillPool(), e.Config().Shards,
		agg.OpsPerSec, agg.Ops, agg.Elapsed.Round(time.Millisecond), agg.P50, agg.P99,
		st.Promotions, st.Demotions, st.Evictions, st.Scans, st.Batches, st.QueueDrops, mem.text())
	if err != nil {
		return err
	}
	if err := writeNodeText(w, e, nodes); err != nil {
		return err
	}
	for _, r := range runs {
		cur, _ := e.TenantStats(r.id)
		_, err := fmt.Fprintf(w, `tenant %-16s %2d%% quota (%d frames, cap %d), %d goroutines
  throughput: %12.0f ops/s, latency p50 %v p95 %v p99 %v
  placement:  %.1f%% DRAM hits, %d faults, %d promotions, %d demotions
  occupancy:  %d/%d DRAM frames (%.0f%% of cap)
`,
			cur.Name, r.percent, cur.DRAMQuota, cur.DRAMCap, r.goroutines,
			r.report.OpsPerSec, r.report.P50, r.report.P95, r.report.P99,
			pct(r.stats.HitsDRAM, r.stats.Accesses), r.stats.Faults, r.stats.Promotions, r.stats.Demotions,
			cur.ResidentDRAM, cur.DRAMCap, pct(cur.ResidentDRAM, cur.DRAMCap))
		if err != nil {
			return err
		}
	}
	return nil
}

func pct(part, whole int64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

func writeArtifact(w io.Writer, e *tiered.Engine, rep *tiered.LoadReport, st tiered.Stats,
	nodes []tiered.NodeStats, mem memReport, name string, scale float64, seed int64,
	goroutines int, sync bool) error {
	a := runner.NewArtifact("tierd", "serve", scale, seed)
	cfg := e.Config()
	syncVal := 0.0
	if sync {
		syncVal = 1
	}
	a.Add(runner.Result{
		ID:        fmt.Sprintf("%s/%s/g%d", name, e.PolicyName(), goroutines),
		Workload:  name,
		Policy:    e.PolicyName(),
		Seed:      seed,
		DRAMPages: cfg.DRAMPages,
		NVMPages:  cfg.NVMPages,
		Params: map[string]float64{
			"goroutines": float64(goroutines),
			"shards":     float64(cfg.Shards),
			"nodes":      float64(e.NumNodes()),
			"sync":       syncVal,
		},
		Values: mem.values(loadValues(rep, st, cfg)),
	})
	addNodeResults(a, e, nodes, seed)
	return a.Write(w)
}

// loadValues assembles the artifact value map shared by the single- and
// multi-tenant aggregate rows.
func loadValues(rep *tiered.LoadReport, st tiered.Stats, cfg tiered.Config) map[string]float64 {
	return map[string]float64{
		"ops":                   float64(rep.Ops),
		"ops_per_sec":           rep.OpsPerSec,
		"p50_ns":                float64(rep.P50.Nanoseconds()),
		"p95_ns":                float64(rep.P95.Nanoseconds()),
		"p99_ns":                float64(rep.P99.Nanoseconds()),
		"max_ns":                float64(rep.Max.Nanoseconds()),
		"hits_dram":             float64(st.HitsDRAM()),
		"hits_nvm":              float64(st.HitsNVM()),
		"faults":                float64(st.Faults),
		"promotions":            float64(st.Promotions),
		"demotions":             float64(st.Demotions),
		"evictions":             float64(st.Evictions),
		"scans":                 float64(st.Scans),
		"batches":               float64(st.Batches),
		"queue_drops":           float64(st.QueueDrops),
		"remote_faults":         float64(st.RemoteFaults),
		"remote_promotions":     float64(st.RemotePromotions),
		"remote_demotions":      float64(st.RemoteDemotions),
		"break_even_hit":        float64(tiered.BreakEvenHits(cfg.Spec)),
		"break_even_hit_remote": float64(cfg.Topology.BreakEvenHitsRemote(cfg.Spec)),
	}
}

func writeTenantArtifact(w io.Writer, e *tiered.Engine, runs []*tenantRun, rep *tiered.MultiLoadReport,
	st tiered.Stats, nodes []tiered.NodeStats, mem memReport, scale float64, seed int64) error {
	a := runner.NewArtifact("tierd", "serve-multitenant", scale, seed)
	cfg := e.Config()
	agg := rep.Aggregate
	a.Add(runner.Result{
		ID:        fmt.Sprintf("aggregate/%s/t%d", e.PolicyName(), len(runs)),
		Workload:  "mix",
		Policy:    e.PolicyName(),
		Seed:      seed,
		DRAMPages: cfg.DRAMPages,
		NVMPages:  cfg.NVMPages,
		Params: map[string]float64{
			"tenants": float64(len(runs)),
			"shards":  float64(cfg.Shards),
			"nodes":   float64(e.NumNodes()),
			"spill":   float64(e.SpillPool()),
		},
		Values: mem.values(loadValues(&agg, st, cfg)),
	})
	addNodeResults(a, e, nodes, seed)
	for _, r := range runs {
		cur, _ := e.TenantStats(r.id)
		a.Add(runner.Result{
			ID:        fmt.Sprintf("t%d-%s/%s/g%d", r.id, r.workload, e.PolicyName(), r.goroutines),
			Workload:  r.workload,
			Policy:    e.PolicyName(),
			Seed:      r.seed,
			DRAMPages: int(cur.DRAMQuota),
			NVMPages:  cfg.NVMPages,
			Params: map[string]float64{
				"tenant":     float64(r.id),
				"quota_pct":  float64(r.percent),
				"dram_cap":   float64(cur.DRAMCap),
				"goroutines": float64(r.goroutines),
			},
			Values: map[string]float64{
				"ops":             float64(r.report.Ops),
				"ops_per_sec":     r.report.OpsPerSec,
				"p50_ns":          float64(r.report.P50.Nanoseconds()),
				"p95_ns":          float64(r.report.P95.Nanoseconds()),
				"p99_ns":          float64(r.report.P99.Nanoseconds()),
				"max_ns":          float64(r.report.Max.Nanoseconds()),
				"hits_dram":       float64(r.stats.HitsDRAM),
				"hits_nvm":        float64(r.stats.HitsNVM),
				"faults":          float64(r.stats.Faults),
				"promotions":      float64(r.stats.Promotions),
				"demotions":       float64(r.stats.Demotions),
				"evictions":       float64(r.stats.Evictions),
				"resident_dram":   float64(cur.ResidentDRAM),
				"quota_occupancy": pct(cur.ResidentDRAM, cur.DRAMCap) / 100,
			},
		})
	}
	return a.Write(w)
}
