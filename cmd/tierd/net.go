package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"hybridmem/internal/memspec"
	"hybridmem/internal/persist"
	"hybridmem/internal/runner"
	"hybridmem/internal/server"
	"hybridmem/internal/tiered"
	"hybridmem/internal/trace"
)

// netFlags carries the -serve / -connect mode options parsed in main.
type netFlags struct {
	serveAddr     string
	connectAddr   string
	connections   int
	pipeline      int
	openLoop      bool
	rate          float64
	auth          string
	maxConns      int
	idleTimeout   time.Duration
	requireAuth   bool
	persistDir    string
	ckptInterval  time.Duration
	ckptFullEvery int
	warmupTopK    int
	kpi           bool
	admin         adminFlags
}

// persistReport is the serve run's recovery story: what the restore found
// at startup and what the checkpointer left behind at shutdown.
type persistReport struct {
	enabled   bool
	coldStart bool
	restore   tiered.RestoreStats
	restoreMS float64
	// Chain shape of the restored checkpoint: base records plus the
	// delta cuts (and their records) replayed on top.
	baseRecords  int
	chainDeltas  int
	chainRecords int
	ckpt         persist.Stats
	finalOK      bool
}

// runServe is tierd's server mode: build the engine (sized for the
// configured workloads, exactly as the in-process load modes size it),
// expose it over RESP, and serve until SIGINT/SIGTERM. The shutdown
// path is the graceful drain: stop accepting, let in-flight pipelines
// finish and flush, then stop the migration daemon — and the report
// records whether the drain completed within its grace window.
func runServe(nf netFlags, outPath, workloadName, tenantsSpec, policyName string,
	scale float64, seed int64, shards int, numa numaFlags, jsonOut bool) {
	var cfg tiered.Config
	if tenantsSpec != "" {
		shares, err := parseTenants(tenantsSpec)
		if err != nil {
			log.Fatal(err)
		}
		totalPages := 0
		for i, sh := range shares {
			_, _, pages := genTenantTrace(sh.workload, scale, seed+int64(i))
			totalPages += pages
		}
		dram, nvm := memspec.DefaultSizing().Partition(totalPages)
		tenants := make([]tiered.TenantConfig, len(shares))
		for i, sh := range shares {
			tenants[i] = tiered.TenantConfig{
				ID:        tiered.TenantID(i),
				Name:      fmt.Sprintf("%d:%s", i, sh.workload),
				DRAMQuota: dram * sh.percent / 100,
			}
		}
		cfg = tiered.Config{
			Policy:    tiered.Kind(policyName),
			DRAMPages: dram,
			NVMPages:  nvm,
			Shards:    shards,
			Topology:  numa.topology(dram, nvm),
			Tenants:   tenants,
		}
	} else {
		_, _, pages := genTenantTrace(workloadName, scale, seed)
		dram, nvm := memspec.DefaultSizing().Partition(pages)
		cfg = tiered.Config{
			Policy:    tiered.Kind(policyName),
			DRAMPages: dram,
			NVMPages:  nvm,
			Shards:    shards,
			Topology:  numa.topology(dram, nvm),
		}
	}

	ring := nf.admin.ring()
	cfg.Events = ring
	if nf.persistDir != "" {
		cfg.WarmupDRAMTopK = nf.warmupTopK
	}
	engine, err := tiered.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// With -persist the engine is NOT started yet: the restore must land
	// in a fresh engine, so the RESP listener comes up first and answers
	// data commands with -LOADING until the restore completes.
	var (
		ckpt    *persist.Checkpointer
		loading atomic.Bool
		rec     persistReport
	)
	if nf.persistDir != "" {
		ckpt, err = persist.NewCheckpointer(engine, persist.Config{
			Dir:       nf.persistDir,
			Interval:  nf.ckptInterval,
			FullEvery: nf.ckptFullEvery,
		})
		if err != nil {
			log.Fatal(err)
		}
		rec.enabled = true
		loading.Store(true)
	} else if err := engine.Start(); err != nil {
		log.Fatal(err)
	}
	srvCfg := server.Config{
		Addr:        nf.serveAddr,
		MaxConns:    nf.maxConns,
		IdleTimeout: nf.idleTimeout,
		RequireAuth: nf.requireAuth,
	}
	if ckpt != nil {
		srvCfg.Loading = loading.Load
	}
	srv, err := server.New(engine, srvCfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Listen(); err != nil {
		log.Fatal(err)
	}
	adm := startAdmin(nf.admin, engine, srv, ring, ckpt, loading.Load, scale, seed)
	fmt.Fprintf(os.Stderr, "tierd: serving %s on %s (policy %s, DRAM %d + NVM %d frames)\n",
		modeLabel(tenantsSpec, workloadName), srv.Addr(), engine.PolicyName(),
		cfg.DRAMPages, cfg.NVMPages)

	if ckpt != nil {
		// Restore residency and pre-crash hotness from the last valid
		// checkpoint (a missing or unreadable file is a cold start), then
		// start the engine — which kicks off the warm-up promotion storm
		// for the pages that were DRAM-resident at the cut — and only then
		// open the data plane.
		t0 := time.Now()
		chain, rs, err := ckpt.Restore()
		if err != nil {
			log.Fatal(err)
		}
		rec.restoreMS = float64(time.Since(t0).Microseconds()) / 1000
		rec.restore = rs
		rec.coldStart = chain == nil
		if chain != nil {
			rec.baseRecords = len(chain.Base.Records)
			rec.chainDeltas = chain.Deltas
			rec.chainRecords = len(chain.Records)
		}
		if err := engine.Start(); err != nil {
			log.Fatal(err)
		}
		ckpt.Start()
		loading.Store(false)
		if chain == nil {
			fmt.Fprintf(os.Stderr, "tierd: persist %s: no checkpoint, cold start\n", ckpt.Path())
		} else {
			fmt.Fprintf(os.Stderr, "tierd: persist %s: restored %d pages (%d direct to DRAM, %d warm queued, %d skipped) from seq %d (base %d records + %d deltas) in %.1fms\n",
				ckpt.Path(), rs.Restored, rs.WarmDirect, rs.WarmQueued, rs.Skipped+rs.Duplicates+rs.CapacityDrops,
				chain.Seq, rec.baseRecords, chain.Deltas, rec.restoreMS)
		}
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "tierd: draining (send the signal again to force exit)")
	// A second SIGINT/SIGTERM during the drain forces an immediate exit,
	// skipping the final checkpoint — the escape hatch when a drain hangs.
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "tierd: second signal, forcing exit")
		os.Exit(130)
	}()

	// Drain order: RESP first (in-flight pipelines finish), then the
	// daemon, then — with -persist — the final checkpoint over the settled
	// residency, then the admin plane, which stays scrapable through the
	// drain so an orchestrator watching /readyz sees the lifecycle.
	drainErr := srv.Shutdown(5 * time.Second)
	if err := engine.Stop(); err != nil {
		log.Fatal(err)
	}
	if ckpt != nil {
		if err := ckpt.Stop(true); err != nil {
			fmt.Fprintf(os.Stderr, "tierd: final checkpoint: %v\n", err)
		} else {
			rec.finalOK = true
		}
		rec.ckpt = ckpt.Stats()
	}
	invErr := engine.CheckInvariants()
	if invErr != nil {
		fmt.Fprintf(os.Stderr, "tierd: invariants: %v\n", invErr)
	}
	stopAdmin(adm)
	st := srv.Stats()
	es := engine.Stats()

	writeOut(outPath, func(w io.Writer) error {
		if jsonOut {
			return writeServeArtifact(w, engine, st, es, drainErr == nil, invErr == nil, rec, scale, seed)
		}
		return writeServeText(w, engine, st, es, drainErr, rec)
	})
	if drainErr != nil {
		log.Fatal(drainErr)
	}
}

// modeLabel names what the server fronts for the startup banner.
func modeLabel(tenantsSpec, workloadName string) string {
	if tenantsSpec != "" {
		return "tenants " + tenantsSpec
	}
	return "workload " + workloadName
}

func writeServeText(w io.Writer, e *tiered.Engine, st server.Stats, es tiered.Stats,
	drainErr error, rec persistReport) error {
	drain := "clean"
	if drainErr != nil {
		drain = drainErr.Error()
	}
	_, err := fmt.Fprintf(w, `tierd: served %d commands (%d pipelined) over %d connections (%d evicted, %d reaped); drain %s
placement:  %.1f%% DRAM hits, %.1f%% NVM hits, %d faults
migration:  %d promotions, %d demotions, %d evictions
`,
		st.Commands, st.Pipelined, st.Accepted, st.Evicted, st.Reaped, drain,
		pct(es.HitsDRAM(), es.Accesses), pct(es.HitsNVM(), es.Accesses), es.Faults,
		es.Promotions, es.Demotions, es.Evictions)
	if err != nil || !rec.enabled {
		return err
	}
	start := fmt.Sprintf("restored %d pages (%d warm) in %.1fms", rec.restore.Restored,
		rec.restore.WarmQueued, rec.restoreMS)
	if rec.coldStart {
		start = "cold start"
	}
	final := "final checkpoint ok"
	if !rec.finalOK {
		final = "final checkpoint FAILED"
	}
	_, err = fmt.Fprintf(w, "persist:    %s; %d checkpoints written (%d failed, seq %d); %s\n",
		start, rec.ckpt.Written, rec.ckpt.Failures, rec.ckpt.Seq, final)
	return err
}

func writeServeArtifact(w io.Writer, e *tiered.Engine, st server.Stats, es tiered.Stats,
	clean, invClean bool, rec persistReport, scale float64, seed int64) error {
	a := runner.NewArtifact("tierd", "net-serve", scale, seed)
	cfg := e.Config()
	b2f := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	values := map[string]float64{
		"commands":         float64(st.Commands),
		"pipelined":        float64(st.Pipelined),
		"batched_ops":      float64(st.BatchedOps),
		"conns_accepted":   float64(st.Accepted),
		"conns_evicted":    float64(st.Evicted),
		"conns_reaped":     float64(st.Reaped),
		"auth_failures":    float64(st.AuthFailures),
		"protocol_errors":  float64(st.ProtocolErrors),
		"accesses":         float64(es.Accesses),
		"hits_dram":        float64(es.HitsDRAM()),
		"hits_nvm":         float64(es.HitsNVM()),
		"faults":           float64(es.Faults),
		"promotions":       float64(es.Promotions),
		"demotions":        float64(es.Demotions),
		"evictions":        float64(es.Evictions),
		"clean_drain":      b2f(clean),
		"invariants_clean": b2f(invClean),
	}
	if rec.enabled {
		values["cold_start"] = b2f(rec.coldStart)
		values["restore_pages"] = float64(rec.restore.Restored)
		values["restore_warm"] = float64(rec.restore.WarmQueued)
		values["restore_warm_direct"] = float64(rec.restore.WarmDirect)
		values["restore_skipped"] = float64(rec.restore.Skipped + rec.restore.Duplicates + rec.restore.CapacityDrops)
		values["restore_ms"] = rec.restoreMS
		values["restore_base_records"] = float64(rec.baseRecords)
		values["restore_chain_deltas"] = float64(rec.chainDeltas)
		values["restore_chain_records"] = float64(rec.chainRecords)
		values["checkpoints_written"] = float64(rec.ckpt.Written)
		values["checkpoint_failures"] = float64(rec.ckpt.Failures)
		values["checkpoint_seq"] = float64(rec.ckpt.Seq)
		values["checkpoint_full_cuts"] = float64(rec.ckpt.FullCuts)
		values["checkpoint_delta_cuts"] = float64(rec.ckpt.DeltaCuts)
		values["checkpoint_compactions"] = float64(rec.ckpt.Compactions)
		values["checkpoint_bytes_total"] = float64(rec.ckpt.BytesTotal)
		values["checkpoint_base_bytes"] = float64(rec.ckpt.BaseBytes)
		values["checkpoint_delta_bytes"] = float64(rec.ckpt.DeltaBytes)
		values["checkpoint_last_delta_bytes"] = float64(rec.ckpt.LastDeltaBytes)
		values["final_checkpoint"] = b2f(rec.finalOK)
	}
	a.Add(runner.Result{
		ID:        fmt.Sprintf("serve/%s", e.PolicyName()),
		Workload:  "net",
		Policy:    e.PolicyName(),
		Seed:      seed,
		DRAMPages: cfg.DRAMPages,
		NVMPages:  cfg.NVMPages,
		Params: map[string]float64{
			"shards": float64(cfg.Shards),
			"nodes":  float64(e.NumNodes()),
		},
		Values: values,
	})
	return a.Write(w)
}

// clientReport is the benchmark client's outcome: batch round-trip
// latency quantiles over the replayed trace, plus the server's own
// counters fetched over STATS after the run.
type clientReport struct {
	ops         int64
	elapsed     time.Duration
	hist        tiered.Hist
	serverStats map[string]int64
	kpi         kpiReport
}

// kpiReport is the recovery KPI: how long the server took to reach 90%
// of the steady-state hit rate it ended the run at, where a hit is any
// access served from resident memory (DRAM or NVM) rather than faulted
// in. A cold start pays a fault for every first touch, dragging the
// early cumulative rate down; a warm restart starts with the restored
// residency and skips that fault storm, so its t90 should be strictly
// smaller — that difference is what the crash smoke asserts. The DRAM
// pair tracks the same t90 over the DRAM-only hit share: storm-only
// warm-up must climb it promotion by promotion, while age-tiered
// warm-up starts near steady state — the delta between the two restart
// modes.
type kpiReport struct {
	enabled    bool
	t90        time.Duration
	steady     float64
	dramT90    time.Duration
	dramSteady float64
	samples    int
}

// sampleKPI polls the server's cumulative counters over STATS on its own
// connection every 10ms until stopped, then reports the first sample
// whose cumulative hit rate reached 90% of the final one. Samples that
// fail (the server may still answer -LOADING early on) or precede the
// first access are skipped; time runs from the sampler's start, so the
// restore window itself counts against t90.
func sampleKPI(nf netFlags, stop <-chan struct{}, done chan<- kpiReport) {
	type sample struct {
		at   time.Duration
		rate float64
		dram float64
	}
	rep := kpiReport{enabled: true}
	start := time.Now()
	var samples []sample
	c, err := server.DialRetry(nf.connectAddr, 10*time.Second)
	if err != nil {
		done <- rep
		return
	}
	defer c.Close()
	if nf.auth != "" {
		c.Auth(nf.auth)
	}
	// t90 of one rate series: the first sample at >= 90% of the final.
	t90 := func(final float64, rate func(sample) float64) time.Duration {
		at := samples[len(samples)-1].at
		for _, s := range samples {
			if rate(s) >= 0.9*final {
				at = s.at
				break
			}
		}
		return at
	}
	t := time.NewTicker(10 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-stop:
			if len(samples) > 0 {
				last := samples[len(samples)-1]
				rep.steady = last.rate
				rep.dramSteady = last.dram
				rep.samples = len(samples)
				rep.t90 = t90(rep.steady, func(s sample) float64 { return s.rate })
				rep.dramT90 = t90(rep.dramSteady, func(s sample) float64 { return s.dram })
			}
			done <- rep
			return
		case <-t.C:
			st, err := c.Stats()
			if err != nil {
				continue
			}
			if acc := st["accesses"]; acc > 0 {
				samples = append(samples, sample{
					at:   time.Since(start),
					rate: float64(st["hits_dram"]+st["hits_nvm"]) / float64(acc),
					dram: float64(st["hits_dram"]) / float64(acc),
				})
			}
		}
	}
}

// runConnect is tierd's benchmark-client mode: replay a workload trace
// against a live tierd -serve over RESP from N connections, pipelined
// at the configured depth. Closed-loop sends the next batch when the
// previous one is answered (throughput-bound); open-loop paces batches
// on a fixed schedule derived from -rate and measures latency from the
// scheduled send time, so server-side queueing shows up in the
// percentiles instead of being absorbed by a slowed sender.
func runConnect(nf netFlags, outPath, workloadName string, scale float64, seed int64,
	duration time.Duration, ops int64, jsonOut bool) {
	if nf.connections < 1 {
		log.Fatalf("-connections must be positive, got %d", nf.connections)
	}
	if nf.pipeline < 1 {
		log.Fatalf("-pipeline must be positive, got %d", nf.pipeline)
	}
	if nf.openLoop && nf.rate <= 0 {
		log.Fatal("-client-mode open needs -rate (target ops/s)")
	}
	warm, roi, _ := genTenantTrace(workloadName, scale, seed)
	recs := append(warm, roi...)

	deadline := time.Now().Add(duration)
	perConnOps := int64(0)
	if ops > 0 {
		perConnOps = (ops + int64(nf.connections) - 1) / int64(nf.connections)
	}

	var (
		kpiStop chan struct{}
		kpiDone chan kpiReport
	)
	if nf.kpi {
		kpiStop = make(chan struct{})
		kpiDone = make(chan kpiReport, 1)
		go sampleKPI(nf, kpiStop, kpiDone)
	}

	var wg sync.WaitGroup
	hists := make([]tiered.Hist, nf.connections)
	counts := make([]int64, nf.connections)
	errs := make([]error, nf.connections)
	start := time.Now()
	for i := 0; i < nf.connections; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = driveConn(nf, recs, i, perConnOps, deadline, &hists[i], &counts[i])
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var kpi kpiReport
	if nf.kpi {
		close(kpiStop)
		kpi = <-kpiDone
	}
	for _, err := range errs {
		if err != nil {
			log.Fatal(err)
		}
	}

	rep := clientReport{elapsed: elapsed, kpi: kpi}
	for i := range hists {
		rep.hist.Add(&hists[i])
		rep.ops += counts[i]
	}
	if rep.ops == 0 {
		log.Fatal("no operations completed")
	}

	// One extra connection fetches the server's counters for the report.
	if c, err := server.Dial(nf.connectAddr, 2*time.Second); err == nil {
		if nf.auth != "" {
			c.Auth(nf.auth)
		}
		rep.serverStats, _ = c.Stats()
		c.Close()
	}

	writeOut(outPath, func(w io.Writer) error {
		if jsonOut {
			return writeClientArtifact(w, nf, rep, workloadName, scale, seed)
		}
		return writeClientText(w, nf, rep, workloadName)
	})
}

// driveConn runs one connection's share of the load. Latency is
// recorded per pipelined batch: for depth 1 that is per-op round-trip
// time; for deeper pipelines it is the time the whole batch spent
// outstanding, the number a capacity plan actually needs.
func driveConn(nf netFlags, recs []trace.Record, id int, opBudget int64,
	deadline time.Time, hist *tiered.Hist, count *int64) error {
	c, err := server.DialRetry(nf.connectAddr, 5*time.Second)
	if err != nil {
		return fmt.Errorf("connection %d: %v", id, err)
	}
	defer c.Close()
	if nf.auth != "" {
		if err := c.Auth(nf.auth); err != nil {
			return fmt.Errorf("connection %d: AUTH: %v", id, err)
		}
	}
	// Ride out the server's restore window: a just-restarted tierd with
	// -persist accepts connections immediately but answers data commands
	// with -LOADING until the checkpoint is restored.
	for probeDeadline := time.Now().Add(30 * time.Second); ; {
		if _, err := c.Do("GET", "0"); err == nil {
			break
		} else if !strings.Contains(err.Error(), "LOADING") || time.Now().After(probeDeadline) {
			return fmt.Errorf("connection %d: %v", id, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
	// Stripe the trace so connections do not replay identical sequences.
	pos := (len(recs) / (id + 1)) % len(recs)
	var interval time.Duration
	next := time.Now()
	if nf.openLoop {
		interval = time.Duration(float64(nf.pipeline) * float64(time.Second) / (nf.rate / float64(nf.connections)))
	}
	for (opBudget == 0 || *count < opBudget) && time.Now().Before(deadline) {
		if nf.openLoop {
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
		}
		batchStart := time.Now()
		if nf.openLoop {
			// Open loop measures from the scheduled send, not the actual
			// one: a late batch carries its lateness into the latency.
			batchStart = next
			next = next.Add(interval)
		}
		for i := 0; i < nf.pipeline; i++ {
			r := recs[pos]
			pos++
			if pos == len(recs) {
				pos = 0
			}
			if r.Op == trace.OpWrite {
				c.EnqueueSet(r.Addr)
			} else {
				c.EnqueueGet(r.Addr)
			}
		}
		if err := c.Flush(); err != nil {
			return fmt.Errorf("connection %d: %v", id, err)
		}
		for i := 0; i < nf.pipeline; i++ {
			if _, err := c.ReadReply(); err != nil {
				return fmt.Errorf("connection %d: %v", id, err)
			}
		}
		hist.Record(time.Since(batchStart))
		*count += int64(nf.pipeline)
	}
	return nil
}

func writeClientText(w io.Writer, nf netFlags, rep clientReport, workloadName string) error {
	mode := "closed"
	if nf.openLoop {
		mode = fmt.Sprintf("open @ %.0f ops/s", nf.rate)
	}
	_, err := fmt.Fprintf(w, `tierd: %s over RESP to %s, %d connections x pipeline %d, %s loop
throughput: %12.0f ops/s (%d ops in %v)
batch rtt:  p50 %v, p95 %v, p99 %v, max %v
`,
		workloadName, nf.connectAddr, nf.connections, nf.pipeline, mode,
		float64(rep.ops)/rep.elapsed.Seconds(), rep.ops, rep.elapsed.Round(time.Millisecond),
		rep.hist.Quantile(0.50), rep.hist.Quantile(0.95), rep.hist.Quantile(0.99), rep.hist.Max())
	if err != nil {
		return err
	}
	if rep.serverStats != nil {
		_, err = fmt.Fprintf(w, "server:     %d accesses, %d DRAM hits, %d NVM hits, %d faults, %d commands\n",
			rep.serverStats["accesses"], rep.serverStats["hits_dram"],
			rep.serverStats["hits_nvm"], rep.serverStats["faults"], rep.serverStats["commands"])
		if err != nil {
			return err
		}
	}
	if rep.kpi.enabled {
		_, err = fmt.Fprintf(w, "kpi:        t90 %v to reach 90%% of steady-state hit rate %.3f (DRAM-tier t90 %v of %.3f; %d samples)\n",
			rep.kpi.t90.Round(time.Millisecond), rep.kpi.steady,
			rep.kpi.dramT90.Round(time.Millisecond), rep.kpi.dramSteady, rep.kpi.samples)
	}
	return err
}

func writeClientArtifact(w io.Writer, nf netFlags, rep clientReport,
	workloadName string, scale float64, seed int64) error {
	a := runner.NewArtifact("tierd", "net-client", scale, seed)
	mode := 0.0
	if nf.openLoop {
		mode = 1
	}
	values := map[string]float64{
		"ops":         float64(rep.ops),
		"ops_per_sec": float64(rep.ops) / rep.elapsed.Seconds(),
		"p50_ns":      float64(rep.hist.Quantile(0.50).Nanoseconds()),
		"p95_ns":      float64(rep.hist.Quantile(0.95).Nanoseconds()),
		"p99_ns":      float64(rep.hist.Quantile(0.99).Nanoseconds()),
		"max_ns":      float64(rep.hist.Max().Nanoseconds()),
	}
	// The server's own view rides along so the smoke gate can assert the
	// load actually hit the engine, not just the socket.
	for k, v := range rep.serverStats {
		values["server_"+k] = float64(v)
	}
	if rep.kpi.enabled {
		values["kpi_t90_ms"] = float64(rep.kpi.t90.Microseconds()) / 1000
		values["kpi_steady_hit_rate"] = rep.kpi.steady
		values["kpi_dram_t90_ms"] = float64(rep.kpi.dramT90.Microseconds()) / 1000
		values["kpi_dram_steady_hit_rate"] = rep.kpi.dramSteady
		values["kpi_samples"] = float64(rep.kpi.samples)
	}
	a.Add(runner.Result{
		ID:       fmt.Sprintf("client/%s/c%dp%d", workloadName, nf.connections, nf.pipeline),
		Workload: workloadName,
		Policy:   "net",
		Seed:     seed,
		Params: map[string]float64{
			"connections": float64(nf.connections),
			"pipeline":    float64(nf.pipeline),
			"open_loop":   mode,
			"rate":        nf.rate,
		},
		Values: values,
	})
	return a.Write(w)
}
