package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"hybridmem/internal/memspec"
	"hybridmem/internal/runner"
	"hybridmem/internal/server"
	"hybridmem/internal/tiered"
	"hybridmem/internal/trace"
)

// netFlags carries the -serve / -connect mode options parsed in main.
type netFlags struct {
	serveAddr   string
	connectAddr string
	connections int
	pipeline    int
	openLoop    bool
	rate        float64
	auth        string
	maxConns    int
	idleTimeout time.Duration
	requireAuth bool
	admin       adminFlags
}

// runServe is tierd's server mode: build the engine (sized for the
// configured workloads, exactly as the in-process load modes size it),
// expose it over RESP, and serve until SIGINT/SIGTERM. The shutdown
// path is the graceful drain: stop accepting, let in-flight pipelines
// finish and flush, then stop the migration daemon — and the report
// records whether the drain completed within its grace window.
func runServe(nf netFlags, outPath, workloadName, tenantsSpec, policyName string,
	scale float64, seed int64, shards int, numa numaFlags, jsonOut bool) {
	var cfg tiered.Config
	if tenantsSpec != "" {
		shares, err := parseTenants(tenantsSpec)
		if err != nil {
			log.Fatal(err)
		}
		totalPages := 0
		for i, sh := range shares {
			_, _, pages := genTenantTrace(sh.workload, scale, seed+int64(i))
			totalPages += pages
		}
		dram, nvm := memspec.DefaultSizing().Partition(totalPages)
		tenants := make([]tiered.TenantConfig, len(shares))
		for i, sh := range shares {
			tenants[i] = tiered.TenantConfig{
				ID:        tiered.TenantID(i),
				Name:      fmt.Sprintf("%d:%s", i, sh.workload),
				DRAMQuota: dram * sh.percent / 100,
			}
		}
		cfg = tiered.Config{
			Policy:    tiered.Kind(policyName),
			DRAMPages: dram,
			NVMPages:  nvm,
			Shards:    shards,
			Topology:  numa.topology(dram, nvm),
			Tenants:   tenants,
		}
	} else {
		_, _, pages := genTenantTrace(workloadName, scale, seed)
		dram, nvm := memspec.DefaultSizing().Partition(pages)
		cfg = tiered.Config{
			Policy:    tiered.Kind(policyName),
			DRAMPages: dram,
			NVMPages:  nvm,
			Shards:    shards,
			Topology:  numa.topology(dram, nvm),
		}
	}

	ring := nf.admin.ring()
	cfg.Events = ring
	engine, err := tiered.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.Start(); err != nil {
		log.Fatal(err)
	}
	srv, err := server.New(engine, server.Config{
		Addr:        nf.serveAddr,
		MaxConns:    nf.maxConns,
		IdleTimeout: nf.idleTimeout,
		RequireAuth: nf.requireAuth,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Listen(); err != nil {
		log.Fatal(err)
	}
	adm := startAdmin(nf.admin, engine, srv, ring, scale, seed)
	fmt.Fprintf(os.Stderr, "tierd: serving %s on %s (policy %s, DRAM %d + NVM %d frames)\n",
		modeLabel(tenantsSpec, workloadName), srv.Addr(), engine.PolicyName(),
		cfg.DRAMPages, cfg.NVMPages)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	signal.Stop(sig)
	fmt.Fprintln(os.Stderr, "tierd: draining")

	// Drain order: RESP first (in-flight pipelines finish), then the
	// daemon, then the admin plane — which stays scrapable through the
	// drain so an orchestrator watching /readyz sees the lifecycle.
	drainErr := srv.Shutdown(5 * time.Second)
	if err := engine.Stop(); err != nil {
		log.Fatal(err)
	}
	stopAdmin(adm)
	st := srv.Stats()
	es := engine.Stats()

	writeOut(outPath, func(w io.Writer) error {
		if jsonOut {
			return writeServeArtifact(w, engine, st, es, drainErr == nil, scale, seed)
		}
		return writeServeText(w, engine, st, es, drainErr)
	})
	if drainErr != nil {
		log.Fatal(drainErr)
	}
}

// modeLabel names what the server fronts for the startup banner.
func modeLabel(tenantsSpec, workloadName string) string {
	if tenantsSpec != "" {
		return "tenants " + tenantsSpec
	}
	return "workload " + workloadName
}

func writeServeText(w io.Writer, e *tiered.Engine, st server.Stats, es tiered.Stats, drainErr error) error {
	drain := "clean"
	if drainErr != nil {
		drain = drainErr.Error()
	}
	_, err := fmt.Fprintf(w, `tierd: served %d commands (%d pipelined) over %d connections (%d evicted, %d reaped); drain %s
placement:  %.1f%% DRAM hits, %.1f%% NVM hits, %d faults
migration:  %d promotions, %d demotions, %d evictions
`,
		st.Commands, st.Pipelined, st.Accepted, st.Evicted, st.Reaped, drain,
		pct(es.HitsDRAM(), es.Accesses), pct(es.HitsNVM(), es.Accesses), es.Faults,
		es.Promotions, es.Demotions, es.Evictions)
	return err
}

func writeServeArtifact(w io.Writer, e *tiered.Engine, st server.Stats, es tiered.Stats,
	clean bool, scale float64, seed int64) error {
	a := runner.NewArtifact("tierd", "net-serve", scale, seed)
	cfg := e.Config()
	cleanVal := 0.0
	if clean {
		cleanVal = 1
	}
	a.Add(runner.Result{
		ID:        fmt.Sprintf("serve/%s", e.PolicyName()),
		Workload:  "net",
		Policy:    e.PolicyName(),
		Seed:      seed,
		DRAMPages: cfg.DRAMPages,
		NVMPages:  cfg.NVMPages,
		Params: map[string]float64{
			"shards": float64(cfg.Shards),
			"nodes":  float64(e.NumNodes()),
		},
		Values: map[string]float64{
			"commands":        float64(st.Commands),
			"pipelined":       float64(st.Pipelined),
			"batched_ops":     float64(st.BatchedOps),
			"conns_accepted":  float64(st.Accepted),
			"conns_evicted":   float64(st.Evicted),
			"conns_reaped":    float64(st.Reaped),
			"auth_failures":   float64(st.AuthFailures),
			"protocol_errors": float64(st.ProtocolErrors),
			"accesses":        float64(es.Accesses),
			"hits_dram":       float64(es.HitsDRAM()),
			"hits_nvm":        float64(es.HitsNVM()),
			"faults":          float64(es.Faults),
			"promotions":      float64(es.Promotions),
			"demotions":       float64(es.Demotions),
			"evictions":       float64(es.Evictions),
			"clean_drain":     cleanVal,
		},
	})
	return a.Write(w)
}

// clientReport is the benchmark client's outcome: batch round-trip
// latency quantiles over the replayed trace, plus the server's own
// counters fetched over STATS after the run.
type clientReport struct {
	ops         int64
	elapsed     time.Duration
	hist        tiered.Hist
	serverStats map[string]int64
}

// runConnect is tierd's benchmark-client mode: replay a workload trace
// against a live tierd -serve over RESP from N connections, pipelined
// at the configured depth. Closed-loop sends the next batch when the
// previous one is answered (throughput-bound); open-loop paces batches
// on a fixed schedule derived from -rate and measures latency from the
// scheduled send time, so server-side queueing shows up in the
// percentiles instead of being absorbed by a slowed sender.
func runConnect(nf netFlags, outPath, workloadName string, scale float64, seed int64,
	duration time.Duration, ops int64, jsonOut bool) {
	if nf.connections < 1 {
		log.Fatalf("-connections must be positive, got %d", nf.connections)
	}
	if nf.pipeline < 1 {
		log.Fatalf("-pipeline must be positive, got %d", nf.pipeline)
	}
	if nf.openLoop && nf.rate <= 0 {
		log.Fatal("-client-mode open needs -rate (target ops/s)")
	}
	warm, roi, _ := genTenantTrace(workloadName, scale, seed)
	recs := append(warm, roi...)

	deadline := time.Now().Add(duration)
	perConnOps := int64(0)
	if ops > 0 {
		perConnOps = (ops + int64(nf.connections) - 1) / int64(nf.connections)
	}

	var wg sync.WaitGroup
	hists := make([]tiered.Hist, nf.connections)
	counts := make([]int64, nf.connections)
	errs := make([]error, nf.connections)
	start := time.Now()
	for i := 0; i < nf.connections; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = driveConn(nf, recs, i, perConnOps, deadline, &hists[i], &counts[i])
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			log.Fatal(err)
		}
	}

	rep := clientReport{elapsed: elapsed}
	for i := range hists {
		rep.hist.Add(&hists[i])
		rep.ops += counts[i]
	}
	if rep.ops == 0 {
		log.Fatal("no operations completed")
	}

	// One extra connection fetches the server's counters for the report.
	if c, err := server.Dial(nf.connectAddr, 2*time.Second); err == nil {
		if nf.auth != "" {
			c.Auth(nf.auth)
		}
		rep.serverStats, _ = c.Stats()
		c.Close()
	}

	writeOut(outPath, func(w io.Writer) error {
		if jsonOut {
			return writeClientArtifact(w, nf, rep, workloadName, scale, seed)
		}
		return writeClientText(w, nf, rep, workloadName)
	})
}

// driveConn runs one connection's share of the load. Latency is
// recorded per pipelined batch: for depth 1 that is per-op round-trip
// time; for deeper pipelines it is the time the whole batch spent
// outstanding, the number a capacity plan actually needs.
func driveConn(nf netFlags, recs []trace.Record, id int, opBudget int64,
	deadline time.Time, hist *tiered.Hist, count *int64) error {
	c, err := server.DialRetry(nf.connectAddr, 5*time.Second)
	if err != nil {
		return fmt.Errorf("connection %d: %v", id, err)
	}
	defer c.Close()
	if nf.auth != "" {
		if err := c.Auth(nf.auth); err != nil {
			return fmt.Errorf("connection %d: AUTH: %v", id, err)
		}
	}
	// Stripe the trace so connections do not replay identical sequences.
	pos := (len(recs) / (id + 1)) % len(recs)
	var interval time.Duration
	next := time.Now()
	if nf.openLoop {
		interval = time.Duration(float64(nf.pipeline) * float64(time.Second) / (nf.rate / float64(nf.connections)))
	}
	for (opBudget == 0 || *count < opBudget) && time.Now().Before(deadline) {
		if nf.openLoop {
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
		}
		batchStart := time.Now()
		if nf.openLoop {
			// Open loop measures from the scheduled send, not the actual
			// one: a late batch carries its lateness into the latency.
			batchStart = next
			next = next.Add(interval)
		}
		for i := 0; i < nf.pipeline; i++ {
			r := recs[pos]
			pos++
			if pos == len(recs) {
				pos = 0
			}
			if r.Op == trace.OpWrite {
				c.EnqueueSet(r.Addr)
			} else {
				c.EnqueueGet(r.Addr)
			}
		}
		if err := c.Flush(); err != nil {
			return fmt.Errorf("connection %d: %v", id, err)
		}
		for i := 0; i < nf.pipeline; i++ {
			if _, err := c.ReadReply(); err != nil {
				return fmt.Errorf("connection %d: %v", id, err)
			}
		}
		hist.Record(time.Since(batchStart))
		*count += int64(nf.pipeline)
	}
	return nil
}

func writeClientText(w io.Writer, nf netFlags, rep clientReport, workloadName string) error {
	mode := "closed"
	if nf.openLoop {
		mode = fmt.Sprintf("open @ %.0f ops/s", nf.rate)
	}
	_, err := fmt.Fprintf(w, `tierd: %s over RESP to %s, %d connections x pipeline %d, %s loop
throughput: %12.0f ops/s (%d ops in %v)
batch rtt:  p50 %v, p95 %v, p99 %v, max %v
`,
		workloadName, nf.connectAddr, nf.connections, nf.pipeline, mode,
		float64(rep.ops)/rep.elapsed.Seconds(), rep.ops, rep.elapsed.Round(time.Millisecond),
		rep.hist.Quantile(0.50), rep.hist.Quantile(0.95), rep.hist.Quantile(0.99), rep.hist.Max())
	if err != nil {
		return err
	}
	if rep.serverStats != nil {
		_, err = fmt.Fprintf(w, "server:     %d accesses, %d DRAM hits, %d NVM hits, %d faults, %d commands\n",
			rep.serverStats["accesses"], rep.serverStats["hits_dram"],
			rep.serverStats["hits_nvm"], rep.serverStats["faults"], rep.serverStats["commands"])
	}
	return err
}

func writeClientArtifact(w io.Writer, nf netFlags, rep clientReport,
	workloadName string, scale float64, seed int64) error {
	a := runner.NewArtifact("tierd", "net-client", scale, seed)
	mode := 0.0
	if nf.openLoop {
		mode = 1
	}
	values := map[string]float64{
		"ops":         float64(rep.ops),
		"ops_per_sec": float64(rep.ops) / rep.elapsed.Seconds(),
		"p50_ns":      float64(rep.hist.Quantile(0.50).Nanoseconds()),
		"p95_ns":      float64(rep.hist.Quantile(0.95).Nanoseconds()),
		"p99_ns":      float64(rep.hist.Quantile(0.99).Nanoseconds()),
		"max_ns":      float64(rep.hist.Max().Nanoseconds()),
	}
	// The server's own view rides along so the smoke gate can assert the
	// load actually hit the engine, not just the socket.
	for k, v := range rep.serverStats {
		values["server_"+k] = float64(v)
	}
	a.Add(runner.Result{
		ID:       fmt.Sprintf("client/%s/c%dp%d", workloadName, nf.connections, nf.pipeline),
		Workload: workloadName,
		Policy:   "net",
		Seed:     seed,
		Params: map[string]float64{
			"connections": float64(nf.connections),
			"pipeline":    float64(nf.pipeline),
			"open_loop":   mode,
			"rate":        nf.rate,
		},
		Values: values,
	})
	return a.Write(w)
}
