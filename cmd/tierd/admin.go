package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"time"

	"hybridmem/internal/obs"
	"hybridmem/internal/persist"
	"hybridmem/internal/server"
	"hybridmem/internal/tiered"
)

// adminFlags carries the -admin / -pprof-contention options. The admin
// plane works in every engine-hosting mode: -serve gets the full catalog
// (engine + RESP fabric), the in-process load modes get the engine
// catalog, and both get the migration trace ring, pprof and probes.
type adminFlags struct {
	addr     string
	profiles bool
	ringSize int
}

// ring returns the migration trace ring to attach to the engine config,
// or nil when the admin plane is off (keeping the engine's migration
// paths free of even the nil-check's branch target). -trace-ring sizes
// it: a churny run publishes far more demotion/eviction events than the
// default 4096 slots hold, and a caller that wants the rarer promotion
// events to survive to /events must size the ring above the run's total
// migration count.
func (af adminFlags) ring() *obs.EventRing {
	if af.addr == "" {
		return nil
	}
	n := af.ringSize
	if n <= 0 {
		n = obs.DefaultRingSize
	}
	return obs.NewEventRing(n)
}

// startAdmin brings the admin plane up over a started engine and an
// optional RESP server: one registry holding every catalog, readiness
// tied to the engine (and server) lifecycle, invariant checks on demand,
// and the event ring behind /events. Returns nil when -admin is unset.
// ckpt and loading are the optional persistence hooks from -persist:
// the checkpointer's counters join the catalog, and /readyz reports
// not-ready while loading() is true (the restore window).
func startAdmin(af adminFlags, e *tiered.Engine, srv *server.Server,
	ring *obs.EventRing, ckpt *persist.Checkpointer, loading func() bool,
	scale float64, seed int64) *obs.Admin {
	if af.addr == "" {
		return nil
	}
	reg := obs.NewRegistry()
	e.RegisterMetrics(reg)
	if srv != nil {
		srv.RegisterMetrics(reg)
	}
	if ckpt != nil {
		ckpt.RegisterMetrics(reg)
	}
	adm, err := obs.NewAdmin(obs.AdminConfig{
		Addr:     af.addr,
		Registry: reg,
		Events:   ring,
		Ready: func() error {
			if loading != nil && loading() {
				return errors.New("restoring checkpoint")
			}
			if !e.Running() {
				return errors.New("engine not running")
			}
			if srv != nil && !srv.Serving() {
				return errors.New("resp server not serving")
			}
			return nil
		},
		Invariants: e.CheckInvariants,
		Profiles:   af.profiles,
		Tool:       "tierd",
		Scale:      scale,
		Seed:       seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := adm.Listen(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "tierd: admin plane on %s (/metrics /healthz /readyz /events /debug/pprof)\n", adm.URL())
	return adm
}

// stopAdmin shuts the admin plane down; nil-safe so call sites don't
// branch on whether -admin was set.
func stopAdmin(adm *obs.Admin) {
	if adm == nil {
		return
	}
	if err := adm.Shutdown(2 * time.Second); err != nil {
		fmt.Fprintf(os.Stderr, "tierd: admin shutdown: %v\n", err)
	}
}
