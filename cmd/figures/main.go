// Command figures regenerates every table and figure of the paper's
// evaluation, plus the headline-claims summary and the two methodology
// ablations.
//
// Usage:
//
//	figures [-id all|table2|table3|table4|fig1|fig2a|fig2b|fig2c|fig4a|fig4b|fig4c|claims|fullsys|replacement|arch]
//	        [-scale 0.02] [-seed 1] [-csv] [-adaptive]
//	        [-parallel N] [-json] [-out FILE]
//
// Figures print as stacked text bars (or CSV with -csv); tables print as
// aligned text. -json instead runs the full evaluation grid and emits the
// stable machine-readable artifact (hybridmem.results/v1); -out redirects
// any output to a file; -parallel bounds the worker pool (0 = all CPUs)
// without changing a single output byte.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hybridmem/internal/experiments"
	"hybridmem/internal/fullsys"
	"hybridmem/internal/memspec"
	"hybridmem/internal/model"
	"hybridmem/internal/report"
	"hybridmem/internal/runner"
)

func main() {
	id := flag.String("id", "all", "experiment id (all, table2-4, fig1, fig2a-c, fig4a-c, claims, fullsys, replacement, arch)")
	scale := flag.Float64("scale", 0.02, "trace scale (1.0 = full Table III sizes)")
	seed := flag.Int64("seed", 1, "trace generation seed")
	csv := flag.Bool("csv", false, "emit figures as CSV instead of text bars")
	adaptive := flag.Bool("adaptive", false, "use the adaptive-threshold variant of the proposed scheme")
	parallel := flag.Int("parallel", 0, "worker-pool width (0 = all CPUs)")
	jsonOut := flag.Bool("json", false, "emit the machine-readable grid artifact instead of figures")
	outPath := flag.String("out", "", "write output to this file instead of stdout")
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.Scale = *scale
	cfg.Seed = *seed
	cfg.Adaptive = *adaptive
	cfg.Parallel = *parallel
	// One cache per invocation: the grid, tables and ablations all replay
	// the same materialized traces.
	cfg.Cache = runner.NewTraceCache()

	if *jsonOut && (*id != "all" || *csv) {
		fmt.Fprintln(os.Stderr, "figures: -json emits the full grid artifact and cannot be combined with -id or -csv")
		os.Exit(2)
	}

	if err := run(*id, cfg, *csv, *jsonOut, *outPath); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(id string, cfg experiments.Config, csv, jsonOut bool, outPath string) error {
	return report.WithOutput(outPath, func(out io.Writer) error {
		return emitAll(out, id, cfg, csv, jsonOut)
	})
}

func emitAll(out io.Writer, id string, cfg experiments.Config, csv, jsonOut bool) error {
	if jsonOut {
		runs, err := experiments.RunAll(cfg)
		if err != nil {
			return err
		}
		return experiments.GridArtifact("figures", cfg, runs).Write(out)
	}

	needsRuns := id == "all"
	for _, f := range experiments.FigureIDs() {
		if id == f {
			needsRuns = true
		}
	}
	if id == "claims" {
		needsRuns = true
	}

	var runs []*experiments.WorkloadRun
	if needsRuns {
		var err error
		runs, err = experiments.RunAll(cfg)
		if err != nil {
			return err
		}
	}

	emitFigure := func(fid string) error {
		f, err := experiments.BuildFigure(fid, runs)
		if err != nil {
			return err
		}
		if csv {
			return experiments.FigureCSV(f).WriteCSV(out)
		}
		if err := experiments.RenderFigure(f).Write(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
		return nil
	}

	emit := func(eid string) error {
		switch eid {
		case "table2":
			defer fmt.Fprintln(out)
			return experiments.Table2(memspec.DefaultMachine()).Write(out)
		case "table3":
			t, err := experiments.Table3(cfg)
			if err != nil {
				return err
			}
			defer fmt.Fprintln(out)
			if csv {
				return t.WriteCSV(out)
			}
			return t.Write(out)
		case "table4":
			defer fmt.Fprintln(out)
			return experiments.Table4(cfg.Spec).Write(out)
		case "claims":
			fmt.Fprintln(out, "Headline claims (paper vs this reproduction):")
			defer fmt.Fprintln(out)
			return experiments.ExtractClaims(runs).Write(out)
		case "fullsys":
			return emitFullsys(out, cfg)
		case "arch":
			return emitArch(out, cfg)
		case "replacement":
			return emitReplacement(out, cfg)
		default:
			return emitFigure(eid)
		}
	}

	if id != "all" {
		return emit(id)
	}
	order := append([]string{"table2", "table3", "table4"}, experiments.FigureIDs()...)
	order = append(order, "claims", "replacement", "arch", "fullsys")
	for _, eid := range order {
		if err := emit(eid); err != nil {
			return fmt.Errorf("%s: %w", eid, err)
		}
	}
	return nil
}

func emitFullsys(out io.Writer, cfg experiments.Config) error {
	t := &report.Table{
		Title: "Trace-methodology ablation: direct calibrated traces vs cache-filtered (COTSon-substitute) traces",
		Headers: []string{"Workload", "CPU accesses", "Post-LLC", "Filter ratio",
			"L1D hit", "LLC hit", "AMAT direct (ns)", "AMAT filtered (ns)"},
	}
	for _, name := range []string{"bodytrack", "freqmine", "x264"} {
		r, err := experiments.FullSysAblation(name, cfg, fullsys.DefaultOptions())
		if err != nil {
			return err
		}
		directAMAT := r.Direct.AMAT.HitDRAM + r.Direct.AMAT.HitNVM + r.Direct.AMAT.Migrations()
		filteredAMAT := r.Filtered.AMAT.HitDRAM + r.Filtered.AMAT.HitNVM + r.Filtered.AMAT.Migrations()
		t.AddRow(name,
			fmt.Sprintf("%d", r.CPUAccesses),
			fmt.Sprintf("%d", r.FilteredAccesses),
			fmt.Sprintf("%.1f%%", 100*float64(r.FilteredAccesses)/float64(r.CPUAccesses)),
			fmt.Sprintf("%.3f", r.L1DHitRatio),
			fmt.Sprintf("%.3f", r.LLCHitRatio),
			fmt.Sprintf("%.1f", directAMAT),
			fmt.Sprintf("%.1f", filteredAMAT))
	}
	defer fmt.Fprintln(out)
	return t.Write(out)
}

func emitArch(out io.Writer, cfg experiments.Config) error {
	t := &report.Table{
		Title: "Architecture comparison (Section III): exclusive migration vs DRAM-as-cache",
		Headers: []string{"Workload", "Arch", "AMAT hits+mig (ns)", "Power (nJ)",
			"NVM writes", "DRAM hit ratio"},
	}
	rows, err := experiments.ArchAll([]string{"ferret", "streamcluster", "canneal", "vips"}, cfg)
	if err != nil {
		return err
	}
	for _, row := range rows {
		add := func(arch string, r *model.Report) {
			t.AddRow(row.Workload, arch,
				fmt.Sprintf("%.1f", r.AMAT.HitDRAM+r.AMAT.HitNVM+r.AMAT.Migrations()),
				fmt.Sprintf("%.2f", r.APPR.Total()),
				fmt.Sprintf("%d", r.NVMWrites.Total()),
				fmt.Sprintf("%.3f", r.Probabilities.PHitDRAM))
		}
		add("proposed (migration)", row.Proposed)
		add("dram-cache", row.Cache)
		add("static-partition", row.Static)
		add("clock-dwf", row.DWF)
	}
	defer fmt.Fprintln(out)
	return t.Write(out)
}

func emitReplacement(out io.Writer, cfg experiments.Config) error {
	t := &report.Table{
		Title:   "Replacement-quality comparison (hit ratios; memory = 75% of footprint)",
		Headers: []string{"Workload", "Frames", "LRU", "CLOCK", "CLOCK-Pro"},
	}
	rows, err := experiments.ReplacementAll(cfg)
	if err != nil {
		return err
	}
	for _, row := range rows {
		t.AddRow(row.Workload, fmt.Sprintf("%d", row.Frames),
			fmt.Sprintf("%.4f", row.LRU),
			fmt.Sprintf("%.4f", row.Clock),
			fmt.Sprintf("%.4f", row.ClockPro))
	}
	defer fmt.Fprintln(out)
	return t.Write(out)
}
