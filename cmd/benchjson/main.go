// Command benchjson converts `go test -bench` text output into a small,
// stable JSON artifact so CI can publish machine-readable performance
// trajectories instead of burying ns/op numbers in build logs.
//
//	go test -bench='BenchmarkShardedTable|BenchmarkTieredServe' -benchtime=1x -run='^$' ./internal/tiered \
//	  | go run ./cmd/benchjson -suite tiered -out BENCH_tiered.json
//
// Only benchmark result lines are parsed; everything else (pass/fail
// summaries, logs) is ignored. The run fails if no benchmark line is
// found, so a benchmark that stops compiling cannot silently produce an
// empty artifact.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"strconv"
)

// benchLine matches one `go test -bench` result, e.g.
// "BenchmarkTieredServe/shards=64/goroutines=16-8  1  52731 ns/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op`)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the full benchmark path including sub-benchmark parameters
	// and the trailing -GOMAXPROCS suffix.
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
}

// Artifact is the emitted document.
type Artifact struct {
	Schema     string      `json:"schema"`
	Suite      string      `json:"suite"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func parse(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad iteration count in %q: %v", sc.Text(), err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad ns/op in %q: %v", sc.Text(), err)
		}
		out = append(out, Benchmark{Name: m[1], Iterations: iters, NsPerOp: ns})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	var (
		suite   = flag.String("suite", "default", "suite label recorded in the artifact")
		outPath = flag.String("out", "", "write the artifact to a file instead of stdout")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments %v (benchmark output is read from stdin)", flag.Args())
	}

	benches, err := parse(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	if len(benches) == 0 {
		log.Fatal("no benchmark result lines on stdin")
	}

	w := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(Artifact{
		Schema:     "hybridmem.bench/v1",
		Suite:      *suite,
		Benchmarks: benches,
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks (suite %s)\n", len(benches), *suite)
}
