// Command benchjson converts `go test -bench` text output into a small,
// stable JSON artifact so CI can publish machine-readable performance
// trajectories instead of burying ns/op numbers in build logs — and gates
// serve-path regressions against a committed baseline.
//
//	go test -bench='BenchmarkServeParallel' -benchtime=300000x -run='^$' ./internal/tiered \
//	  | go run ./cmd/benchjson -suite tiered -baseline BENCH_baseline.json -out BENCH_tiered.json
//
// Only benchmark result lines are parsed; everything else (pass/fail
// summaries, logs) is ignored. The run fails if no benchmark line is
// found, so a benchmark that stops compiling cannot silently produce an
// empty artifact.
//
// With -baseline, every parsed benchmark whose name matches -gate is
// compared against the same benchmark in the baseline artifact. The
// default gate covers the lockfree table probe and the single-node
// engine serve path (impl=engine/nodes=1); the multi-node variants are
// recorded but ungated, since their cost is the feature under study. Names are
// matched with the -GOMAXPROCS suffix stripped (artifacts from machines
// with different core counts line up), and when a benchmark appears more
// than once (`go test -count=N`) both sides compare per-name minima — the
// noise-robust estimator, so a single descheduled repetition cannot flip
// the gate. A gated benchmark slower than baseline by more than
// -max-regress fails the run after the artifact is written. The gate also
// fails when it matches nothing, and when a gated benchmark is absent
// from the baseline — a renamed benchmark must not silently disable its
// own regression check. Refresh the baseline deliberately with
// `make bench-baseline` when a change legitimately shifts the numbers.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// benchLine matches one `go test -bench` result, e.g.
// "BenchmarkTieredServe/shards=64/goroutines=16-8  1  52731 ns/op  0 B/op  0 allocs/op".
// The memory columns appear only under -benchmem or b.ReportAllocs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

// procsSuffix is the trailing -GOMAXPROCS benchmark-name decoration.
var procsSuffix = regexp.MustCompile(`-\d+$`)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the full benchmark path including sub-benchmark parameters
	// and the trailing -GOMAXPROCS suffix.
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// AllocsPerOp and BytesPerOp are present when the benchmark reported
	// allocations (b.ReportAllocs / -benchmem).
	AllocsPerOp *int64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  *int64 `json:"bytes_per_op,omitempty"`
}

// Artifact is the emitted document.
type Artifact struct {
	Schema     string      `json:"schema"`
	Suite      string      `json:"suite"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func parse(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad iteration count in %q: %v", sc.Text(), err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad ns/op in %q: %v", sc.Text(), err)
		}
		b := Benchmark{Name: m[1], Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			bytes, err := strconv.ParseInt(m[4], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad B/op in %q: %v", sc.Text(), err)
			}
			allocs, err := strconv.ParseInt(m[5], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad allocs/op in %q: %v", sc.Text(), err)
			}
			b.BytesPerOp, b.AllocsPerOp = &bytes, &allocs
		}
		out = append(out, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// normalize strips the -GOMAXPROCS suffix so runs from machines with
// different core counts compare by benchmark identity.
func normalize(name string) string {
	return procsSuffix.ReplaceAllString(name, "")
}

// regression is one gate violation.
type regression struct {
	name     string
	base, ns float64
}

// minByName folds benchmarks into per-normalized-name minima: with
// `-count N` each benchmark appears N times, and the minimum is the
// standard noise-robust estimator (a machine cannot run faster than the
// code allows, only slower), so one noisy repetition cannot fail — or
// inflate the baseline of — the gate.
func minByName(benches []Benchmark) map[string]float64 {
	m := make(map[string]float64, len(benches))
	for _, b := range benches {
		name := normalize(b.Name)
		if best, ok := m[name]; !ok || b.NsPerOp < best {
			m[name] = b.NsPerOp
		}
	}
	return m
}

// gateAgainst compares cur's gated benchmarks (per-name minima) with the
// baseline artifact, returning the violations, how many gated benchmarks
// were compared, any gated benchmark the baseline does not know, and any
// gated baseline benchmark the current run no longer produces. Both
// mismatch directions must fail loudly: a partially renamed suite must
// not silently un-gate the renamed entries, and deleting a sub-benchmark
// must not silently delete its regression check.
func gateAgainst(cur []Benchmark, baseline Artifact, gate *regexp.Regexp, maxRegress float64) (viol []regression, compared int, missing, vanished []string) {
	base := minByName(baseline.Benchmarks)
	curMin := minByName(cur)
	names := make([]string, 0, len(curMin))
	for name := range curMin {
		if gate.MatchString(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		want, ok := base[name]
		if !ok {
			missing = append(missing, name)
			continue
		}
		compared++
		if got := curMin[name]; got > want*(1+maxRegress) {
			viol = append(viol, regression{name: name, base: want, ns: got})
		}
	}
	for name := range base {
		if gate.MatchString(name) {
			if _, ok := curMin[name]; !ok {
				vanished = append(vanished, name)
			}
		}
	}
	sort.Strings(vanished)
	return viol, compared, missing, vanished
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	var (
		suite      = flag.String("suite", "default", "suite label recorded in the artifact")
		outPath    = flag.String("out", "", "write the artifact to a file instead of stdout")
		baseline   = flag.String("baseline", "", "baseline artifact to diff against (empty = no gate)")
		gateExpr   = flag.String("gate", `^BenchmarkServeParallel/impl=(lockfree|engine/nodes=1)/`, "regexp of benchmark names the regression gate applies to")
		maxRegress = flag.Float64("max-regress", 0.25, "fail when a gated benchmark is slower than baseline by more than this fraction")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments %v (benchmark output is read from stdin)", flag.Args())
	}
	gate, err := regexp.Compile(*gateExpr)
	if err != nil {
		log.Fatalf("bad -gate: %v", err)
	}

	benches, err := parse(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	if len(benches) == 0 {
		log.Fatal("no benchmark result lines on stdin")
	}

	w := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(Artifact{
		Schema:     "hybridmem.bench/v1",
		Suite:      *suite,
		Benchmarks: benches,
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks (suite %s)\n", len(benches), *suite)

	if *baseline == "" {
		return
	}
	raw, err := os.ReadFile(*baseline)
	if err != nil {
		log.Fatalf("baseline: %v", err)
	}
	var base Artifact
	if err := json.Unmarshal(raw, &base); err != nil {
		log.Fatalf("baseline %s: %v", *baseline, err)
	}
	viol, compared, missing, vanished := gateAgainst(benches, base, gate, *maxRegress)
	if len(missing) > 0 {
		log.Fatalf("perf gate: %d gated benchmark(s) absent from baseline %s (%v) — refresh with `make bench-baseline` so they are gated too",
			len(missing), *baseline, missing)
	}
	if len(vanished) > 0 {
		log.Fatalf("perf gate: %d baseline benchmark(s) missing from this run (%v) — deleted or renamed without refreshing %s?",
			len(vanished), vanished, *baseline)
	}
	if compared == 0 {
		log.Fatalf("perf gate matched no benchmarks (gate %q vs baseline %s) — renamed without refreshing the baseline?",
			*gateExpr, *baseline)
	}
	for _, v := range viol {
		fmt.Fprintf(os.Stderr, "benchjson: REGRESSION %s: %.1f ns/op vs baseline %.1f (+%.0f%%, budget %.0f%%)\n",
			v.name, v.ns, v.base, 100*(v.ns/v.base-1), 100**maxRegress)
	}
	if len(viol) > 0 {
		log.Fatalf("%d of %d gated benchmarks regressed past %.0f%%; if intentional, refresh with `make bench-baseline`",
			len(viol), compared, 100**maxRegress)
	}
	fmt.Fprintf(os.Stderr, "benchjson: perf gate ok (%d gated benchmarks within %.0f%% of baseline)\n",
		compared, 100**maxRegress)
}
