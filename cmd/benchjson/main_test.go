package main

import (
	"regexp"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: hybridmem/internal/tiered
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkServeParallel/impl=lockfree/goroutines=16-4         	  300000	        33.26 ns/op	       0 B/op	       0 allocs/op
BenchmarkServeParallel/impl=locked/goroutines=16-4           	  300000	        75.41 ns/op	       0 B/op	       0 allocs/op
BenchmarkTieredServe/shards=64/goroutines=16-4               	       1	     52731 ns/op
PASS
ok  	hybridmem/internal/tiered	0.457s
`

func TestParse(t *testing.T) {
	benches, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(benches))
	}
	b := benches[0]
	if b.Name != "BenchmarkServeParallel/impl=lockfree/goroutines=16-4" ||
		b.Iterations != 300000 || b.NsPerOp != 33.26 {
		t.Fatalf("first benchmark parsed as %+v", b)
	}
	if b.AllocsPerOp == nil || *b.AllocsPerOp != 0 || b.BytesPerOp == nil || *b.BytesPerOp != 0 {
		t.Fatalf("memory columns not parsed: %+v", b)
	}
	// The plain line (no -benchmem columns) leaves the pointers nil.
	if benches[2].AllocsPerOp != nil || benches[2].BytesPerOp != nil {
		t.Fatalf("memory columns invented for %+v", benches[2])
	}
}

func TestNormalizeStripsProcsSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkServeParallel/impl=lockfree/goroutines=16-8": "BenchmarkServeParallel/impl=lockfree/goroutines=16",
		"BenchmarkServeParallel/impl=lockfree/goroutines=16":   "BenchmarkServeParallel/impl=lockfree/goroutines=16",
		"BenchmarkFoo-64": "BenchmarkFoo",
	}
	for in, want := range cases {
		if got := normalize(in); got != want {
			t.Errorf("normalize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestGateAgainst(t *testing.T) {
	gate := regexp.MustCompile(`^BenchmarkServeParallel/impl=lockfree/`)
	baseline := Artifact{Benchmarks: []Benchmark{
		{Name: "BenchmarkServeParallel/impl=lockfree/goroutines=16-8", NsPerOp: 130},
		{Name: "BenchmarkServeParallel/impl=lockfree/goroutines=16-8", NsPerOp: 100}, // -count rep: min wins
		{Name: "BenchmarkServeParallel/impl=lockfree/goroutines=64-8", NsPerOp: 100},
		{Name: "BenchmarkServeParallel/impl=locked/goroutines=16-8", NsPerOp: 100},
	}}

	// Within budget (and a different -procs suffix): no violations. One
	// noisy repetition does not trip the gate — the per-name minimum is
	// compared. The locked impl is not gated.
	cur := []Benchmark{
		{Name: "BenchmarkServeParallel/impl=lockfree/goroutines=16-4", NsPerOp: 400}, // noisy rep
		{Name: "BenchmarkServeParallel/impl=lockfree/goroutines=16-4", NsPerOp: 120},
		{Name: "BenchmarkServeParallel/impl=lockfree/goroutines=64-4", NsPerOp: 124.9},
		{Name: "BenchmarkServeParallel/impl=locked/goroutines=16-4", NsPerOp: 900},
	}
	viol, compared, missing, vanished := gateAgainst(cur, baseline, gate, 0.25)
	if len(viol) != 0 || compared != 2 || len(missing) != 0 || len(vanished) != 0 {
		t.Fatalf("viol=%v compared=%d missing=%v vanished=%v, want none/2/none/none",
			viol, compared, missing, vanished)
	}

	// Past budget on every repetition: flagged with the right identity.
	cur[2].NsPerOp = 126
	viol, compared, _, _ = gateAgainst(cur, baseline, gate, 0.25)
	if compared != 2 || len(viol) != 1 ||
		viol[0].name != "BenchmarkServeParallel/impl=lockfree/goroutines=64" {
		t.Fatalf("viol=%+v compared=%d, want one on goroutines=64", viol, compared)
	}

	// A gated benchmark the baseline does not know must be reported, not
	// silently skipped: a partial rename cannot un-gate itself.
	cur = append(cur, Benchmark{Name: "BenchmarkServeParallel/impl=lockfree/goroutines=128-4", NsPerOp: 1})
	_, _, missing, _ = gateAgainst(cur, baseline, gate, 0.25)
	if len(missing) != 1 || missing[0] != "BenchmarkServeParallel/impl=lockfree/goroutines=128" {
		t.Fatalf("missing=%v, want the goroutines=128 entry", missing)
	}

	// A gated baseline benchmark the current run no longer produces must
	// be reported too: deleting a sub-benchmark cannot delete its gate.
	shrunk := []Benchmark{cur[0], cur[1]} // goroutines=16 reps only
	_, _, _, vanished = gateAgainst(shrunk, baseline, gate, 0.25)
	if len(vanished) != 1 || vanished[0] != "BenchmarkServeParallel/impl=lockfree/goroutines=64" {
		t.Fatalf("vanished=%v, want the goroutines=64 entry", vanished)
	}

	// A gate that matches nothing reports zero comparisons (main fails).
	_, compared, missing, _ = gateAgainst(cur, baseline, regexp.MustCompile(`^BenchmarkRenamed`), 0.25)
	if compared != 0 || len(missing) != 0 {
		t.Fatalf("compared=%d missing=%v for unmatched gate, want 0/none", compared, missing)
	}
}

// TestDefaultGateCoversSingleNodeEnginePath pins what the default gate
// regex protects: the lock-free table probe and the single-node engine
// serve path are gated; the locked reference and the multi-node engine
// variants (whose cost is the feature under study) are not.
func TestDefaultGateCoversSingleNodeEnginePath(t *testing.T) {
	gate := regexp.MustCompile(`^BenchmarkServeParallel/impl=(lockfree|engine/nodes=1)/`)
	cases := []struct {
		name  string
		gated bool
	}{
		{"BenchmarkServeParallel/impl=lockfree/goroutines=16", true},
		{"BenchmarkServeParallel/impl=engine/nodes=1/goroutines=16", true},
		{"BenchmarkServeParallel/impl=engine/nodes=2/goroutines=16", false},
		{"BenchmarkServeParallel/impl=locked/goroutines=16", false},
		{"BenchmarkTieredServe/shards=1/goroutines=1", false},
	}
	for _, tc := range cases {
		if got := gate.MatchString(tc.name); got != tc.gated {
			t.Errorf("gate match %q = %v, want %v", tc.name, got, tc.gated)
		}
	}
}
