// Command characterize regenerates the paper's Table III workload
// characterization — working-set size, read and write counts — either from
// the built-in generators or from a stored trace file.
//
// Usage:
//
//	characterize [-scale 0.02] [-seed 1]          # all generators
//	characterize -trace ferret.trc [-format binary|text]
package main

import (
	"flag"
	"fmt"
	"os"

	"hybridmem/internal/experiments"
	"hybridmem/internal/memspec"
	"hybridmem/internal/trace"
	"hybridmem/internal/workload"
)

func main() {
	scale := flag.Float64("scale", 0.02, "trace scale for generator characterization")
	seed := flag.Int64("seed", 1, "trace seed")
	traceFile := flag.String("trace", "", "characterize a stored trace file instead")
	format := flag.String("format", "binary", "trace file format: binary or text")
	reuse := flag.String("reuse", "", "also print the reuse-distance profile of this workload")
	flag.Parse()

	if err := run(*scale, *seed, *traceFile, *format, *reuse); err != nil {
		fmt.Fprintln(os.Stderr, "characterize:", err)
		os.Exit(1)
	}
}

func run(scale float64, seed int64, traceFile, format, reuse string) error {
	if traceFile != "" {
		return characterizeFile(traceFile, format)
	}
	if reuse != "" {
		return reuseProfile(reuse, scale, seed)
	}
	cfg := experiments.DefaultConfig()
	cfg.Scale = scale
	cfg.Seed = seed
	cfg.MinPages = 0 // show the raw scaling, no floor
	t, err := experiments.Table3(cfg)
	if err != nil {
		return err
	}
	return t.Write(os.Stdout)
}

func characterizeFile(path, format string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var src trace.Source
	switch format {
	case "binary":
		src = trace.NewReader(f)
	case "text":
		src = trace.NewTextReader(f)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	st := trace.CollectStats(src, workload.PageSizeBytes)
	if r, ok := src.(interface{ Err() error }); ok && r.Err() != nil {
		return r.Err()
	}
	fmt.Printf("trace %s:\n", path)
	fmt.Printf("  accesses:     %d (%d reads, %d writes; %.1f%% writes)\n",
		st.Total(), st.Reads, st.Writes, 100*st.WriteFraction())
	fmt.Printf("  working set:  %d pages (%d KB)\n", st.FootprintPages(), st.WorkingSetKB())
	if st.Total() > 0 {
		fmt.Printf("  mean CPU gap: %.1f ns\n", st.TotalGapNS/float64(st.Total()))
	}
	return nil
}

// reuseProfile prints the page-level reuse-distance histogram of a workload:
// the locality ground truth behind every LRU-family hit ratio.
func reuseProfile(name string, scale float64, seed int64) error {
	spec, ok := workload.ByName(name)
	if !ok {
		return fmt.Errorf("unknown workload %q (have: %v)", name, workload.Names())
	}
	gen, err := workload.NewGenerator(spec, scale, seed)
	if err != nil {
		return err
	}
	r, err := trace.AnalyzeReuse(gen, workload.PageSizeBytes, 24)
	if err != nil {
		return err
	}
	fmt.Printf("%s reuse-distance profile (%d accesses, %.3f%% cold):\n",
		name, r.Total(), 100*r.ColdFraction())
	for _, b := range r.Histogram() {
		share := 100 * float64(b.Count) / float64(r.Total())
		fmt.Printf("  dist %7d..%-7d %10d (%.1f%%)\n", b.LoDistance, b.HiDistance, b.Count, share)
	}
	frames := memspecTotal(gen.Pages())
	fmt.Printf("implied LRU hit ratio at the paper's provisioning (%d frames): %.4f\n",
		frames, r.HitRatioAt(frames))
	return nil
}

func memspecTotal(pages int) int {
	return memspec.DefaultSizing().TotalPages(pages)
}
