// Command sweep runs the sensitivity studies around the paper's design
// choices: migration thresholds (the Section V-B raytrace discussion),
// the DRAM share of the hybrid memory, the access-granularity PageFactor
// (Section II), and the fixed-vs-adaptive threshold ablation (the paper's
// stated future work).
//
// Usage:
//
//	sweep -kind threshold [-workload raytrace] [-scale 0.02]
//	sweep -kind dram      [-workload ferret]
//	sweep -kind pagefactor [-workload freqmine]
//	sweep -kind adaptive  [-workload raytrace]
//	sweep -kind wearlevel [-workload vips]
//	sweep -kind mix       [-workload bodytrack,ferret,canneal]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hybridmem/internal/experiments"
	"hybridmem/internal/memspec"
	"hybridmem/internal/model"
	"hybridmem/internal/report"
)

func main() {
	kind := flag.String("kind", "threshold", "threshold, dram, pagefactor, adaptive, wearlevel or mix (workload=a,b,...)")
	wl := flag.String("workload", "raytrace", "Table III workload name")
	scale := flag.Float64("scale", 0.02, "trace scale")
	seed := flag.Int64("seed", 1, "trace seed")
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.Scale = *scale
	cfg.Seed = *seed

	var err error
	switch *kind {
	case "threshold":
		err = sweepThreshold(*wl, cfg)
	case "dram":
		err = sweepDRAM(*wl, cfg)
	case "pagefactor":
		err = sweepPageFactor(*wl, cfg)
	case "adaptive":
		err = sweepAdaptive(*wl, cfg)
	case "wearlevel":
		err = sweepWearLevel(*wl, cfg)
	case "mix":
		err = sweepMix(*wl, cfg)
	default:
		err = fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func sweepThreshold(wl string, cfg experiments.Config) error {
	points, err := experiments.ThresholdSweep(wl, cfg, experiments.DefaultThresholdPairs())
	if err != nil {
		return err
	}
	t := &report.Table{
		Title: fmt.Sprintf("Threshold sensitivity on %s (Section V-B)", wl),
		Headers: []string{"read-thr", "write-thr", "PMigD", "power vs DRAM",
			"AMAT vs CLOCK-DWF", "NVM writes vs NVM-only"},
	}
	for _, p := range points {
		t.AddRow(
			fmt.Sprintf("%d", p.ReadThreshold),
			fmt.Sprintf("%d", p.WriteThreshold),
			fmt.Sprintf("%.6f", p.Proposed.Probabilities.PMigD),
			fmt.Sprintf("%.3f", p.PowerVsDRAM),
			fmt.Sprintf("%.3f", p.AMATVsDWF),
			fmt.Sprintf("%.3f", p.WritesVsNVMOnly))
	}
	return t.Write(os.Stdout)
}

func sweepDRAM(wl string, cfg experiments.Config) error {
	points, err := experiments.DRAMSweep(wl, cfg,
		[]float64{0.05, 0.10, 0.20, 0.30, 0.50})
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   fmt.Sprintf("DRAM share sweep on %s (paper fixes 10%%)", wl),
		Headers: []string{"DRAM share", "PHitDRAM", "power vs DRAM-only", "AMAT vs CLOCK-DWF"},
	}
	for _, p := range points {
		t.AddRow(
			fmt.Sprintf("%.0f%%", p.DRAMFraction*100),
			fmt.Sprintf("%.3f", p.Run.Report(experiments.Proposed).Probabilities.PHitDRAM),
			fmt.Sprintf("%.3f", p.PowerVsDRAM),
			fmt.Sprintf("%.3f", p.AMATVsDWF))
	}
	return t.Write(os.Stdout)
}

func sweepPageFactor(wl string, cfg experiments.Config) error {
	points, err := experiments.PageFactorSweep(wl, cfg, []memspec.Geometry{
		{PageSizeBytes: 4096, LineSizeBytes: 64},
		{PageSizeBytes: 4096, LineSizeBytes: 16},
		{PageSizeBytes: 4096, LineSizeBytes: 4},
		{PageSizeBytes: 8192, LineSizeBytes: 64},
	})
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   fmt.Sprintf("Access-granularity (PageFactor) sweep on %s (Section II)", wl),
		Headers: []string{"page", "line", "PageFactor", "power vs DRAM-only", "AMAT vs CLOCK-DWF"},
	}
	for _, p := range points {
		t.AddRow(
			fmt.Sprintf("%dB", p.Geometry.PageSizeBytes),
			fmt.Sprintf("%dB", p.Geometry.LineSizeBytes),
			fmt.Sprintf("%d", p.PageFactor),
			fmt.Sprintf("%.3f", p.PowerVsDRAM),
			fmt.Sprintf("%.3f", p.AMATVsDWF))
	}
	return t.Write(os.Stdout)
}

func sweepAdaptive(wl string, cfg experiments.Config) error {
	cmp, err := experiments.CompareAdaptive(wl, cfg)
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   fmt.Sprintf("Fixed vs adaptive thresholds on %s (paper's future work)", wl),
		Headers: []string{"variant", "APPR (nJ)", "AMAT hits+mig (ns)", "NVM writes", "PMigD"},
	}
	for _, v := range []struct {
		name string
		rep  *model.Report
	}{
		{"fixed", cmp.Fixed},
		{"adaptive", cmp.Adaptive},
	} {
		t.AddRow(v.name,
			fmt.Sprintf("%.2f", v.rep.APPR.Total()),
			fmt.Sprintf("%.1f", v.rep.AMAT.HitDRAM+v.rep.AMAT.HitNVM+v.rep.AMAT.Migrations()),
			fmt.Sprintf("%d", v.rep.NVMWrites.Total()),
			fmt.Sprintf("%.6f", v.rep.Probabilities.PMigD))
	}
	if err := t.Write(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("adaptive controller settled at thresholds %d/%d\n",
		cmp.FinalReadThreshold, cmp.FinalWriteThreshold)
	return nil
}

func sweepWearLevel(wl string, cfg experiments.Config) error {
	t := &report.Table{
		Title:   fmt.Sprintf("Start-Gap wear leveling on %s (NVM-only placement)", wl),
		Headers: []string{"period (lines)", "imbalance", "worst-frame lifetime (y)", "gap moves"},
	}
	plainDone := false
	for _, period := range []int{64, 16, 4} {
		res, err := experiments.WearLevelAblation(wl, cfg, period)
		if err != nil {
			return err
		}
		if !plainDone {
			t.AddRow("off", fmt.Sprintf("%.2f", res.PlainImbalance),
				fmt.Sprintf("%.2f", res.PlainWorstYears), "0")
			plainDone = true
		}
		t.AddRow(fmt.Sprintf("%d", period),
			fmt.Sprintf("%.2f", res.LeveledImbalance),
			fmt.Sprintf("%.2f", res.LeveledWorstYears),
			fmt.Sprintf("%d", res.GapMoves))
	}
	return t.Write(os.Stdout)
}

func sweepMix(wl string, cfg experiments.Config) error {
	names := strings.Split(wl, ",")
	run, err := experiments.RunMixed(names, cfg)
	if err != nil {
		return err
	}
	t := &report.Table{
		Title: fmt.Sprintf("Consolidated-server mix %s (DRAM %d + NVM %d frames)",
			run.Label(), run.DRAMPages, run.NVMPages),
		Headers: []string{"policy", "AMAT hits+mig (ns)", "power (nJ)", "NVM writes", "DRAM hit ratio"},
	}
	for _, id := range []experiments.PolicyID{
		experiments.DRAMOnly, experiments.NVMOnly,
		experiments.ClockDWF, experiments.Proposed,
	} {
		r := run.Reports[id]
		t.AddRow(string(id),
			fmt.Sprintf("%.1f", r.AMAT.HitDRAM+r.AMAT.HitNVM+r.AMAT.Migrations()),
			fmt.Sprintf("%.2f", r.APPR.Total()),
			fmt.Sprintf("%d", r.NVMWrites.Total()),
			fmt.Sprintf("%.3f", r.Probabilities.PHitDRAM))
	}
	return t.Write(os.Stdout)
}
