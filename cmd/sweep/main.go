// Command sweep runs the sensitivity studies around the paper's design
// choices: migration thresholds (the Section V-B raytrace discussion),
// the DRAM share of the hybrid memory, the access-granularity PageFactor
// (Section II), the fixed-vs-adaptive threshold ablation (the paper's
// stated future work), Start-Gap wear leveling, consolidated-server mixes
// and seed sensitivity.
//
// Usage:
//
//	sweep -kind threshold  [-workload raytrace] [-scale 0.02]
//	sweep -kind dram       [-workload ferret]
//	sweep -kind pagefactor [-workload freqmine]
//	sweep -kind adaptive   [-workload raytrace]
//	sweep -kind wearlevel  [-workload vips]
//	sweep -kind mix        [-workload bodytrack,ferret,canneal]
//	sweep -kind seeds      [-seeds 5]
//
// Execution flags (all kinds):
//
//	-parallel N   worker-pool width (0 = all CPUs); results are identical
//	              at any width
//	-json         emit the stable machine-readable result artifact
//	              (hybridmem.results/v1) instead of text tables
//	-out FILE     write output to FILE instead of stdout
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"hybridmem/internal/experiments"
	"hybridmem/internal/memspec"
	"hybridmem/internal/model"
	"hybridmem/internal/report"
	"hybridmem/internal/runner"
)

func main() {
	kind := flag.String("kind", "threshold", "threshold, dram, pagefactor, adaptive, wearlevel, seeds or mix (workload=a,b,...)")
	wl := flag.String("workload", "raytrace", "Table III workload name")
	scale := flag.Float64("scale", 0.02, "trace scale")
	seed := flag.Int64("seed", 1, "trace seed")
	parallel := flag.Int("parallel", 0, "worker-pool width (0 = all CPUs)")
	jsonOut := flag.Bool("json", false, "emit the machine-readable result artifact instead of text")
	outPath := flag.String("out", "", "write output to this file instead of stdout")
	seedCount := flag.Int("seeds", 5, "number of derived seeds for -kind seeds")
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.Scale = *scale
	cfg.Seed = *seed
	cfg.Parallel = *parallel
	// One cache per invocation: every stage of a sweep replays the same
	// materialized traces.
	cfg.Cache = runner.NewTraceCache()

	if err := run(*kind, *wl, cfg, *jsonOut, *outPath, *seedCount); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(kind, wl string, cfg experiments.Config, jsonOut bool, outPath string, seedCount int) error {
	return report.WithOutput(outPath, func(w io.Writer) error {
		switch kind {
		case "threshold":
			return sweepThreshold(w, wl, cfg, jsonOut)
		case "dram":
			return sweepDRAM(w, wl, cfg, jsonOut)
		case "pagefactor":
			return sweepPageFactor(w, wl, cfg, jsonOut)
		case "adaptive":
			return sweepAdaptive(w, wl, cfg, jsonOut)
		case "wearlevel":
			return sweepWearLevel(w, wl, cfg, jsonOut)
		case "mix":
			return sweepMix(w, wl, cfg, jsonOut)
		case "seeds":
			return sweepSeeds(w, cfg, seedCount, jsonOut)
		default:
			return fmt.Errorf("unknown kind %q", kind)
		}
	})
}

func sweepThreshold(w io.Writer, wl string, cfg experiments.Config, jsonOut bool) error {
	points, err := experiments.ThresholdSweep(wl, cfg, experiments.DefaultThresholdPairs())
	if err != nil {
		return err
	}
	if jsonOut {
		return experiments.ThresholdArtifact("sweep", wl, cfg, points).Write(w)
	}
	t := &report.Table{
		Title: fmt.Sprintf("Threshold sensitivity on %s (Section V-B)", wl),
		Headers: []string{"read-thr", "write-thr", "PMigD", "power vs DRAM",
			"AMAT vs CLOCK-DWF", "NVM writes vs NVM-only"},
	}
	for _, p := range points {
		t.AddRow(
			fmt.Sprintf("%d", p.ReadThreshold),
			fmt.Sprintf("%d", p.WriteThreshold),
			fmt.Sprintf("%.6f", p.Proposed.Probabilities.PMigD),
			fmt.Sprintf("%.3f", p.PowerVsDRAM),
			fmt.Sprintf("%.3f", p.AMATVsDWF),
			fmt.Sprintf("%.3f", p.WritesVsNVMOnly))
	}
	return t.Write(w)
}

func sweepDRAM(w io.Writer, wl string, cfg experiments.Config, jsonOut bool) error {
	points, err := experiments.DRAMSweep(wl, cfg,
		[]float64{0.05, 0.10, 0.20, 0.30, 0.50})
	if err != nil {
		return err
	}
	if jsonOut {
		return experiments.DRAMArtifact("sweep", wl, cfg, points).Write(w)
	}
	t := &report.Table{
		Title:   fmt.Sprintf("DRAM share sweep on %s (paper fixes 10%%)", wl),
		Headers: []string{"DRAM share", "PHitDRAM", "power vs DRAM-only", "AMAT vs CLOCK-DWF"},
	}
	for _, p := range points {
		t.AddRow(
			fmt.Sprintf("%.0f%%", p.DRAMFraction*100),
			fmt.Sprintf("%.3f", p.Run.Report(experiments.Proposed).Probabilities.PHitDRAM),
			fmt.Sprintf("%.3f", p.PowerVsDRAM),
			fmt.Sprintf("%.3f", p.AMATVsDWF))
	}
	return t.Write(w)
}

func sweepPageFactor(w io.Writer, wl string, cfg experiments.Config, jsonOut bool) error {
	points, err := experiments.PageFactorSweep(wl, cfg, []memspec.Geometry{
		{PageSizeBytes: 4096, LineSizeBytes: 64},
		{PageSizeBytes: 4096, LineSizeBytes: 16},
		{PageSizeBytes: 4096, LineSizeBytes: 4},
		{PageSizeBytes: 8192, LineSizeBytes: 64},
	})
	if err != nil {
		return err
	}
	if jsonOut {
		return experiments.PageFactorArtifact("sweep", wl, cfg, points).Write(w)
	}
	t := &report.Table{
		Title:   fmt.Sprintf("Access-granularity (PageFactor) sweep on %s (Section II)", wl),
		Headers: []string{"page", "line", "PageFactor", "power vs DRAM-only", "AMAT vs CLOCK-DWF"},
	}
	for _, p := range points {
		t.AddRow(
			fmt.Sprintf("%dB", p.Geometry.PageSizeBytes),
			fmt.Sprintf("%dB", p.Geometry.LineSizeBytes),
			fmt.Sprintf("%d", p.PageFactor),
			fmt.Sprintf("%.3f", p.PowerVsDRAM),
			fmt.Sprintf("%.3f", p.AMATVsDWF))
	}
	return t.Write(w)
}

func sweepAdaptive(w io.Writer, wl string, cfg experiments.Config, jsonOut bool) error {
	cmp, err := experiments.CompareAdaptive(wl, cfg)
	if err != nil {
		return err
	}
	if jsonOut {
		return experiments.AdaptiveArtifact("sweep", wl, cfg, cmp).Write(w)
	}
	t := &report.Table{
		Title:   fmt.Sprintf("Fixed vs adaptive thresholds on %s (paper's future work)", wl),
		Headers: []string{"variant", "APPR (nJ)", "AMAT hits+mig (ns)", "NVM writes", "PMigD"},
	}
	for _, v := range []struct {
		name string
		rep  *model.Report
	}{
		{"fixed", cmp.Fixed},
		{"adaptive", cmp.Adaptive},
	} {
		t.AddRow(v.name,
			fmt.Sprintf("%.2f", v.rep.APPR.Total()),
			fmt.Sprintf("%.1f", v.rep.AMAT.HitDRAM+v.rep.AMAT.HitNVM+v.rep.AMAT.Migrations()),
			fmt.Sprintf("%d", v.rep.NVMWrites.Total()),
			fmt.Sprintf("%.6f", v.rep.Probabilities.PMigD))
	}
	if err := t.Write(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "adaptive controller settled at thresholds %d/%d\n",
		cmp.FinalReadThreshold, cmp.FinalWriteThreshold)
	return nil
}

func sweepWearLevel(w io.Writer, wl string, cfg experiments.Config, jsonOut bool) error {
	periods := []int{64, 16, 4}
	results := make([]*experiments.WearLevelResult, 0, len(periods))
	for _, period := range periods {
		res, err := experiments.WearLevelAblation(wl, cfg, period)
		if err != nil {
			return err
		}
		results = append(results, res)
	}
	if jsonOut {
		return experiments.WearLevelArtifact("sweep", wl, cfg, periods, results).Write(w)
	}
	t := &report.Table{
		Title:   fmt.Sprintf("Start-Gap wear leveling on %s (NVM-only placement)", wl),
		Headers: []string{"period (lines)", "imbalance", "worst-frame lifetime (y)", "gap moves"},
	}
	t.AddRow("off", fmt.Sprintf("%.2f", results[0].PlainImbalance),
		fmt.Sprintf("%.2f", results[0].PlainWorstYears), "0")
	for i, period := range periods {
		t.AddRow(fmt.Sprintf("%d", period),
			fmt.Sprintf("%.2f", results[i].LeveledImbalance),
			fmt.Sprintf("%.2f", results[i].LeveledWorstYears),
			fmt.Sprintf("%d", results[i].GapMoves))
	}
	return t.Write(w)
}

func sweepMix(w io.Writer, wl string, cfg experiments.Config, jsonOut bool) error {
	names := strings.Split(wl, ",")
	run, err := experiments.RunMixed(names, cfg)
	if err != nil {
		return err
	}
	if jsonOut {
		return experiments.MixArtifact("sweep", cfg, run).Write(w)
	}
	t := &report.Table{
		Title: fmt.Sprintf("Consolidated-server mix %s (DRAM %d + NVM %d frames)",
			run.Label(), run.DRAMPages, run.NVMPages),
		Headers: []string{"policy", "AMAT hits+mig (ns)", "power (nJ)", "NVM writes", "DRAM hit ratio"},
	}
	for _, id := range experiments.StandardPolicies() {
		r := run.Reports[id]
		t.AddRow(string(id),
			fmt.Sprintf("%.1f", r.AMAT.HitDRAM+r.AMAT.HitNVM+r.AMAT.Migrations()),
			fmt.Sprintf("%.2f", r.APPR.Total()),
			fmt.Sprintf("%d", r.NVMWrites.Total()),
			fmt.Sprintf("%.3f", r.Probabilities.PHitDRAM))
	}
	return t.Write(w)
}

func sweepSeeds(w io.Writer, cfg experiments.Config, count int, jsonOut bool) error {
	// Derive the study's seeds deterministically from the base seed, so
	// one -seed value names the whole experiment.
	if count < 0 {
		count = 0
	}
	seeds := make([]int64, count)
	for i := range seeds {
		seeds[i] = runner.DeriveSeed(cfg.Seed, fmt.Sprintf("seed-study/%d", i))
	}
	study, err := experiments.RunSeeds(cfg, seeds)
	if err != nil {
		return err
	}
	if jsonOut {
		return experiments.SeedsArtifact("sweep", cfg, seeds, study).Write(w)
	}
	t := &report.Table{
		Title:   fmt.Sprintf("Seed sensitivity of the G-Mean headline ratios (%d derived seeds)", count),
		Headers: []string{"metric", "mean ± stddev [min, max]"},
	}
	t.AddRow("power vs DRAM-only", study.PowerVsDRAM.String())
	t.AddRow("AMAT vs CLOCK-DWF", study.AMATVsDWF.String())
	t.AddRow("NVM writes vs NVM-only", study.WritesVsNVMOnly.String())
	return t.Write(w)
}
