// Benchmark harness: one benchmark per paper table and figure, regenerating
// the artifact end to end (trace synthesis, warmup, all four policies, model
// evaluation, figure assembly) per iteration, plus micro-benchmarks of every
// substrate on the hot path and ablation benches for the design choices
// DESIGN.md calls out.
//
// Figure benches report their headline number through b.ReportMetric, so a
// benchmark run doubles as a quick reproduction check:
//
//	go test -bench=Fig -benchmem
//
// The benchmarks run at a reduced trace scale (the experiments' shapes are
// scale-stable; see DESIGN.md); cmd/figures regenerates everything at any
// scale including 1.0.
package hybridmem

import (
	"testing"

	"hybridmem/internal/cache"
	"hybridmem/internal/clockdwf"
	"hybridmem/internal/clockpro"
	"hybridmem/internal/core"
	"hybridmem/internal/dramcache"
	"hybridmem/internal/experiments"
	"hybridmem/internal/fullsys"
	"hybridmem/internal/lru"
	"hybridmem/internal/memspec"
	"hybridmem/internal/policy"
	"hybridmem/internal/sim"
	"hybridmem/internal/trace"
	"hybridmem/internal/workload"
)

// benchCfg is the reduced-scale configuration the figure benches run at.
func benchCfg() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Scale = 0.002
	cfg.MinPages = 128
	return cfg
}

// benchRunAll regenerates the full evaluation once.
func benchRunAll(b *testing.B) []*experiments.WorkloadRun {
	b.Helper()
	runs, err := experiments.RunAll(benchCfg())
	if err != nil {
		b.Fatal(err)
	}
	return runs
}

// figureBench regenerates one figure per iteration and reports its G-Mean
// (or for fig1, the mean static share) as the headline metric.
func figureBench(b *testing.B, id string, group int) {
	var headline float64
	for i := 0; i < b.N; i++ {
		runs := benchRunAll(b)
		f, err := experiments.BuildFigure(id, runs)
		if err != nil {
			b.Fatal(err)
		}
		if gi, ok := f.ColumnIndex("G-Mean"); ok {
			headline = f.Total(group, gi)
		} else {
			// fig1: average static share across workloads.
			sum := 0.0
			static := f.Groups[0].Components[0].Values
			for _, v := range static {
				sum += v
			}
			headline = sum / float64(len(static))
		}
	}
	b.ReportMetric(headline, "headline")
}

// BenchmarkTable2 regenerates the machine-configuration table.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Table2(memspec.DefaultMachine())
		if len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable3 regenerates the workload characterization (all twelve
// generators, warmup + ROI).
func BenchmarkTable3(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3Measure(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 12 {
			b.Fatal("missing workloads")
		}
	}
}

// BenchmarkTable4 regenerates the memory-characteristics table.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Table4(memspec.Default())
		if len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig1 regenerates the DRAM-only power breakdown (Fig. 1).
func BenchmarkFig1(b *testing.B) { figureBench(b, "fig1", 0) }

// BenchmarkFig2a regenerates CLOCK-DWF power vs DRAM-only (Fig. 2a).
func BenchmarkFig2a(b *testing.B) { figureBench(b, "fig2a", 0) }

// BenchmarkFig2b regenerates CLOCK-DWF AMAT vs DRAM-only (Fig. 2b).
func BenchmarkFig2b(b *testing.B) { figureBench(b, "fig2b", 0) }

// BenchmarkFig2c regenerates CLOCK-DWF NVM writes vs NVM-only (Fig. 2c).
func BenchmarkFig2c(b *testing.B) { figureBench(b, "fig2c", 0) }

// BenchmarkFig4a regenerates the two-policy power comparison (Fig. 4a),
// reporting the proposed scheme's G-Mean.
func BenchmarkFig4a(b *testing.B) { figureBench(b, "fig4a", 1) }

// BenchmarkFig4b regenerates the two-policy NVM-writes comparison (Fig. 4b).
func BenchmarkFig4b(b *testing.B) { figureBench(b, "fig4b", 1) }

// BenchmarkFig4c regenerates the proposed-vs-CLOCK-DWF AMAT figure (Fig. 4c).
func BenchmarkFig4c(b *testing.B) { figureBench(b, "fig4c", 0) }

// --- ablation benches (design choices) ---

// BenchmarkAblationThresholds sweeps the migration thresholds on raytrace
// (the Section V-B sensitivity discussion).
func BenchmarkAblationThresholds(b *testing.B) {
	cfg := benchCfg()
	pairs := [][2]int{{8, 12}, {96, 128}, {256, 384}}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ThresholdSweep("raytrace", cfg, pairs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAdaptive compares fixed and adaptive thresholds.
func BenchmarkAblationAdaptive(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CompareAdaptive("raytrace", cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPageFactor sweeps the migration granularity (Section II).
func BenchmarkAblationPageFactor(b *testing.B) {
	cfg := benchCfg()
	geoms := []memspec.Geometry{memspec.DefaultGeometry(), memspec.WordGeometry()}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.PageFactorSweep("freqmine", cfg, geoms); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationFullSys regenerates the trace-methodology comparison.
func BenchmarkAblationFullSys(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FullSysAblation("bodytrack", cfg, fullsys.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationReplacement regenerates the LRU/CLOCK/CLOCK-Pro hit-ratio
// comparison.
func BenchmarkAblationReplacement(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ReplacementComparison("ferret", cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- policy micro-benchmarks (ns per memory access) ---

// benchTrace builds a reusable skewed trace.
func benchTrace(n int) []trace.Record {
	spec, _ := workload.ByName("ferret")
	g, err := workload.NewGenerator(spec, 0.01, 7)
	if err != nil {
		panic(err)
	}
	recs, err := trace.Materialize(trace.Limit(g, n), 0)
	if err != nil && err != trace.ErrTruncated {
		panic(err)
	}
	return recs
}

func policyBench(b *testing.B, build func() policy.Policy) {
	recs := benchTrace(200000)
	spec := memspec.Default()
	b.ResetTimer()
	total := int64(0)
	for i := 0; i < b.N; i++ {
		p := build()
		res, err := sim.Run(trace.NewSliceSource(recs), p, spec, sim.Options{})
		if err != nil {
			b.Fatal(err)
		}
		total += res.Counts.Accesses
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds()/1e6, "Maccesses/s")
}

// BenchmarkPolicyProposed measures the proposed scheme's access path.
func BenchmarkPolicyProposed(b *testing.B) {
	policyBench(b, func() policy.Policy {
		p, _ := core.New(12, 117, core.DefaultConfig())
		return p
	})
}

// BenchmarkPolicyAdaptive measures the adaptive variant's access path.
func BenchmarkPolicyAdaptive(b *testing.B) {
	policyBench(b, func() policy.Policy {
		p, _ := core.NewAdaptive(12, 117, core.DefaultConfig(), core.DefaultAdaptiveConfig())
		return p
	})
}

// BenchmarkPolicyClockDWF measures CLOCK-DWF's access path.
func BenchmarkPolicyClockDWF(b *testing.B) {
	policyBench(b, func() policy.Policy {
		p, _ := clockdwf.New(12, 117, clockdwf.DefaultConfig())
		return p
	})
}

// BenchmarkPolicyDRAMOnly measures the LRU baseline's access path.
func BenchmarkPolicyDRAMOnly(b *testing.B) {
	policyBench(b, func() policy.Policy {
		p, _ := policy.NewDRAMOnly(129)
		return p
	})
}

// --- substrate micro-benchmarks ---

// BenchmarkSegmentedLRU measures the windowed LRU's Touch path (the
// proposed scheme's hottest operation).
func BenchmarkSegmentedLRU(b *testing.B) {
	l := lru.New[int]()
	l.AddMarker(100, func(uint64, *int) {})
	l.AddMarker(300, func(uint64, *int) {})
	for i := uint64(0); i < 1000; i++ {
		l.PushFront(i, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Touch(uint64(i*7919) % 1000)
	}
}

// BenchmarkGenerator measures workload synthesis throughput.
func BenchmarkGenerator(b *testing.B) {
	spec, _ := workload.ByName("canneal")
	g, err := workload.NewGenerator(spec, 1, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := g.Next(); !ok {
			b.StopTimer()
			g, _ = workload.NewGenerator(spec, 1, 3)
			b.StartTimer()
		}
	}
}

// BenchmarkCacheHierarchy measures the MOESI hierarchy's access path.
func BenchmarkCacheHierarchy(b *testing.B) {
	h, err := cache.NewHierarchy(memspec.DefaultMachine())
	if err != nil {
		b.Fatal(err)
	}
	recs := benchTrace(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := recs[i%len(recs)]
		if _, err := h.Access(int(r.CPU), r.Addr, r.Op == trace.OpWrite, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceCodec measures binary trace encode+decode throughput.
func BenchmarkTraceCodec(b *testing.B) {
	recs := benchTrace(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf writeCounter
		w := trace.NewWriter(&buf)
		if _, err := trace.WriteAll(w, trace.NewSliceSource(recs)); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(recs) * 14))
}

type writeCounter struct{ n int }

func (w *writeCounter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}

// BenchmarkAblationArchitecture regenerates the migration-vs-caching
// comparison (Section III).
func BenchmarkAblationArchitecture(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ArchComparison("ferret", cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationWearLevel regenerates the Start-Gap wear-leveling study.
func BenchmarkAblationWearLevel(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.WearLevelAblation("bodytrack", cfg, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPolicyDRAMCache measures the cache-architecture access path.
func BenchmarkPolicyDRAMCache(b *testing.B) {
	policyBench(b, func() policy.Policy {
		p, _ := dramcache.New(12, 117, dramcache.DefaultConfig())
		return p
	})
}

// BenchmarkClockPro measures the CLOCK-Pro replacement access path.
func BenchmarkClockPro(b *testing.B) {
	recs := benchTrace(100000)
	c, err := clockpro.New(150)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := recs[i%len(recs)]
		c.Access(r.Page(4096))
	}
}
