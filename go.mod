module hybridmem

go 1.24
