package hybridmem

import (
	"testing"
)

func TestSizeFor(t *testing.T) {
	s := SizeFor(1000)
	if s.DRAMPages != 75 || s.NVMPages != 675 {
		t.Errorf("SizeFor(1000) = %+v, want 75/675", s)
	}
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem("bogus", Size{DRAMPages: 2, NVMPages: 8}); err == nil {
		t.Error("unknown policy should error")
	}
	if _, err := NewSystem(Proposed, Size{}); err == nil {
		t.Error("empty size should error")
	}
	if _, err := NewSystem(Proposed, Size{DRAMPages: 2, NVMPages: 8},
		WithThresholds(0, 0)); err == nil {
		t.Error("invalid thresholds should error")
	}
}

func TestWorkloadCatalog(t *testing.T) {
	names := WorkloadNames()
	if len(names) != 12 {
		t.Fatalf("got %d workloads", len(names))
	}
	infos := Workloads()
	if len(infos) != 12 {
		t.Fatalf("got %d infos", len(infos))
	}
	for _, w := range infos {
		if w.WorkingSetKB <= 0 || w.Reads+w.Writes <= 0 {
			t.Errorf("%s: empty characterization", w.Name)
		}
	}
}

func TestGenerateWorkloadUnknown(t *testing.T) {
	if _, _, err := GenerateWorkload("swaptions", 0.01, 1); err == nil {
		t.Error("unknown workload should error")
	}
}

func TestEndToEndQuickstart(t *testing.T) {
	warm, roi, err := GenerateWorkload("ferret", 0.005, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(warm) == 0 || len(roi) == 0 {
		t.Fatal("empty streams")
	}
	size := SizeFor(FootprintPages(warm))
	sys, err := NewSystem(Proposed, size)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Kind() != Proposed {
		t.Errorf("kind = %q", sys.Kind())
	}
	if err := sys.Warm(warm); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(roi)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accesses != int64(len(roi)) {
		t.Errorf("accesses = %d, want %d", res.Accesses, len(roi))
	}
	if res.AMATNanos <= 0 || res.PowerNanojoulesPerAccess <= 0 {
		t.Error("non-positive evaluation")
	}
	sum := res.AMATHitNanos + res.AMATDiskNanos + res.AMATMigrationNanos
	if diff := sum - res.AMATNanos; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("AMAT breakdown %v != total %v", sum, res.AMATNanos)
	}
	psum := res.PowerStatic + res.PowerDynamic + res.PowerPageFault + res.PowerMigration
	if diff := psum - res.PowerNanojoulesPerAccess; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("power breakdown %v != total %v", psum, res.PowerNanojoulesPerAccess)
	}
	if res.NVMWriteLines != res.NVMWritesFromRequests+res.NVMWritesFromFaults+res.NVMWritesFromMigration {
		t.Error("NVM write sources do not sum")
	}
	if res.LifetimeYears <= 0 {
		t.Error("expected a lifetime estimate for a hybrid system")
	}
}

func TestAllPoliciesRunTheSameTrace(t *testing.T) {
	warm, roi, err := GenerateWorkload("bodytrack", 0.005, 2)
	if err != nil {
		t.Fatal(err)
	}
	size := SizeFor(FootprintPages(warm))
	results := map[PolicyKind]*Results{}
	for _, kind := range []PolicyKind{Proposed, ProposedAdaptive, ClockDWF, DRAMOnly, NVMOnly} {
		sys, err := NewSystem(kind, size)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if err := sys.Warm(warm); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		res, err := sys.Run(roi)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		results[kind] = res
	}
	// Sanity of the paper's ordering on a write-heavy workload: the
	// proposed scheme writes less to NVM than both CLOCK-DWF and NVM-only.
	if p, d := results[Proposed].NVMWriteLines, results[ClockDWF].NVMWriteLines; p >= d {
		t.Errorf("proposed NVM writes %d >= CLOCK-DWF %d", p, d)
	}
	if p, n := results[Proposed].NVMWriteLines, results[NVMOnly].NVMWriteLines; p >= n {
		t.Errorf("proposed NVM writes %d >= NVM-only %d", p, n)
	}
	if results[DRAMOnly].NVMWriteLines != 0 {
		t.Error("DRAM-only should have no NVM writes")
	}
}

func TestOptionsApply(t *testing.T) {
	warm, roi, _ := GenerateWorkload("freqmine", 0.005, 3)
	size := SizeFor(FootprintPages(warm))
	loose, _ := NewSystem(Proposed, size, WithThresholds(2, 3), WithWindows(0.5, 0.8))
	strict, _ := NewSystem(Proposed, size, WithThresholds(1<<20, 1<<20))
	loose.Warm(warm)
	strict.Warm(warm)
	lr, err := loose.Run(roi)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := strict.Run(roi)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Promotions != 0 {
		t.Errorf("unreachable thresholds still promoted %d pages", sr.Promotions)
	}
	if lr.Promotions == 0 {
		t.Error("loose thresholds never promoted")
	}
}

func TestWordAccountingChangesPageFactorCosts(t *testing.T) {
	warm, roi, _ := GenerateWorkload("raytrace", 0.005, 4)
	size := SizeFor(FootprintPages(warm))
	lines, _ := NewSystem(ClockDWF, size)
	words, _ := NewSystem(ClockDWF, size, WithWordAccounting())
	lines.Warm(warm)
	words.Warm(warm)
	lr, _ := lines.Run(roi)
	wr, _ := words.Run(roi)
	// Word accounting moves pages as 1024 accesses instead of 64: the
	// migration AMAT component grows accordingly.
	if wr.AMATMigrationNanos <= lr.AMATMigrationNanos {
		t.Errorf("word-granularity migration cost %v should exceed line-granularity %v",
			wr.AMATMigrationNanos, lr.AMATMigrationNanos)
	}
}

func TestDRAMCacheKind(t *testing.T) {
	warm, roi, _ := GenerateWorkload("ferret", 0.005, 6)
	size := SizeFor(FootprintPages(warm))
	sys, err := NewSystem(DRAMCache, size)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Warm(warm); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(roi)
	if err != nil {
		t.Fatal(err)
	}
	// The cache architecture serves hot hits from DRAM without exclusive
	// migration churn.
	if res.DRAMHitRatio <= 0 {
		t.Error("cache never hit")
	}
	if res.AMATNanos <= 0 {
		t.Error("bad evaluation")
	}
}
