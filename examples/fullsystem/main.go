// Full-system pipeline: the COTSon-substitute demonstration. A CPU-level
// access stream runs through the Table II machine model — four cores with
// split 32KB L1s over a shared, inclusive 2MB LLC under MOESI coherence —
// and only the traffic that escapes the hierarchy (LLC miss fills and dirty
// writebacks) reaches the hybrid memory, where the proposed scheme manages
// placement. This is the trace-capture methodology of Section V-A.
//
// This example reaches below the facade into the building blocks
// (internal/fullsys, internal/cache) to show the pipeline explicitly.
package main

import (
	"fmt"
	"log"

	"hybridmem/internal/core"
	"hybridmem/internal/fullsys"
	"hybridmem/internal/memspec"
	"hybridmem/internal/model"
	"hybridmem/internal/sim"
	"hybridmem/internal/trace"
	"hybridmem/internal/workload"
)

func main() {
	spec, _ := workload.ByName("x264")
	gen, err := workload.NewGenerator(spec, 0.02, 1)
	if err != nil {
		log.Fatal(err)
	}

	machine := memspec.DefaultMachine()
	capture, err := fullsys.New(gen, machine, fullsys.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// Materialize the post-LLC trace.
	memTrace, err := trace.Materialize(capture, 0)
	if err != nil {
		log.Fatal(err)
	}
	if capture.Err() != nil {
		log.Fatal(capture.Err())
	}

	h := capture.Hierarchy()
	fmt.Printf("machine: %d cores, %dKB L1D/L1I, %dMB LLC, MOESI\n",
		machine.Cores, machine.L1D.SizeBytes>>10, machine.LLC.SizeBytes>>20)
	fmt.Printf("CPU accesses:     %d\n", capture.CPUAccesses)
	fmt.Printf("post-LLC traffic: %d (%.2f%% of CPU accesses)\n",
		len(memTrace), 100*float64(len(memTrace))/float64(capture.CPUAccesses))
	for i := 0; i < machine.Cores; i++ {
		fmt.Printf("  core %d: L1D hit ratio %.3f, L1I hit ratio %.3f\n",
			i, h.L1D(i).Stats.HitRatio(), h.L1I(i).Stats.HitRatio())
	}
	fmt.Printf("  LLC: hit ratio %.3f, %d writebacks\n\n",
		h.LLC().Stats.HitRatio(), h.LLC().Stats.Writeback)

	// Feed the filtered trace to the proposed scheme.
	st := trace.CollectStats(trace.NewSliceSource(memTrace), 4096)
	sizing := memspec.DefaultSizing()
	dram, nvm := sizing.Partition(st.FootprintPages())
	pol, err := core.New(dram, nvm, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	// First pass warms the memory; the second is measured.
	if _, err := sim.Run(trace.NewSliceSource(memTrace), pol, memspec.Default(), sim.Options{}); err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(trace.NewSliceSource(memTrace), pol, memspec.Default(), sim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := model.Evaluate(res, memspec.Default())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("hybrid memory (%d DRAM + %d NVM frames) under the proposed scheme:\n", dram, nvm)
	fmt.Printf("  AMAT %.1f ns (hits %.1f, migrations %.1f), power %.2f nJ/access\n",
		rep.AMAT.Total(), rep.AMAT.HitDRAM+rep.AMAT.HitNVM, rep.AMAT.Migrations(),
		rep.APPR.Total())
	fmt.Printf("  %d promotions, %d demotions, %d NVM line writes\n",
		res.Counts.Promotions, res.Counts.Demotions, rep.NVMWrites.Total())
}
