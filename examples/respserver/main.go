// Respserver: embed the RESP network front end in your own process. A
// multi-tenant engine is exposed over the redis wire protocol on an
// ephemeral port, a client authenticates as one of the tenants and runs a
// pipelined batch of accesses against it, and the server drains
// gracefully — the full production shape of examples/onlineservice, with
// the load arriving over TCP instead of from in-process goroutines.
//
// While it runs you can also point redis-cli at the printed address:
//
//	redis-cli -p <port> AUTH 0:bodytrack
//	redis-cli -p <port> SET 4096 x
//
// See docs/protocol.md for the wire-protocol reference.
package main

import (
	"fmt"
	"log"
	"time"

	"hybridmem/internal/server"
	"hybridmem/internal/tiered"
)

func main() {
	// Two tenants with DRAM quotas; tenant names double as AUTH tokens.
	engine, err := tiered.New(tiered.Config{
		DRAMPages: 256,
		NVMPages:  1024,
		Tenants: []tiered.TenantConfig{
			{ID: 0, Name: "0:bodytrack", DRAMQuota: 160},
			{ID: 1, Name: "1:canneal", DRAMQuota: 64},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.Start(); err != nil {
		log.Fatal(err)
	}

	// Expose it over RESP. RequireAuth makes tenancy mandatory: data
	// commands are refused until AUTH binds the connection to a tenant.
	srv, err := server.New(engine, server.Config{
		Addr:        "127.0.0.1:0",
		MaxConns:    128,
		IdleTimeout: time.Minute,
		RequireAuth: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Listen(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving RESP on %s\n", srv.Addr())

	// A client connects, authenticates as tenant 0, and pipelines a
	// write-then-read pass over a small working set. GET replies name the
	// tier that served the page — DRAM once the working set is resident.
	client, err := server.Dial(srv.Addr().String(), time.Second)
	if err != nil {
		log.Fatal(err)
	}
	if err := client.Auth("0:bodytrack"); err != nil {
		log.Fatal(err)
	}
	const pages = 64
	for pass := 0; pass < 2; pass++ {
		for p := uint64(0); p < pages; p++ {
			if pass == 0 {
				client.EnqueueSet(p * 4096)
			} else {
				client.EnqueueGet(p * 4096)
			}
		}
		if err := client.Flush(); err != nil {
			log.Fatal(err)
		}
		for p := 0; p < pages; p++ {
			if _, err := client.ReadReply(); err != nil {
				log.Fatal(err)
			}
		}
	}

	// STATS returns the machine-readable counters, including the
	// connection's own tenant breakdown.
	stats, err := client.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine: %d accesses, %d DRAM hits, %d faults\n",
		stats["accesses"], stats["hits_dram"], stats["faults"])
	fmt.Printf("tenant: %d accesses, %d resident DRAM pages\n",
		stats["tenant_accesses"], stats["tenant_resident_dram"])
	client.Close()

	// Graceful drain: stop accepting, answer everything in flight, then —
	// and only then — stop the migration daemon.
	if err := srv.Shutdown(5 * time.Second); err != nil {
		log.Fatal(err)
	}
	if err := engine.Stop(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("drained cleanly")
}
