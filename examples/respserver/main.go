// Respserver: embed the RESP network front end in your own process. A
// multi-tenant engine is exposed over the redis wire protocol on an
// ephemeral port, a client authenticates as one of the tenants and runs a
// pipelined batch of accesses against it, and the server drains
// gracefully — the full production shape of examples/onlineservice, with
// the load arriving over TCP instead of from in-process goroutines.
//
// While it runs you can also point redis-cli at the printed address:
//
//	redis-cli -p <port> AUTH 0:bodytrack
//	redis-cli -p <port> SET 4096 x
//
// See docs/protocol.md for the wire-protocol reference.
package main

import (
	"fmt"
	"log"
	"time"

	"hybridmem/internal/obs"
	"hybridmem/internal/server"
	"hybridmem/internal/tiered"
)

func main() {
	// Two tenants with DRAM quotas; tenant names double as AUTH tokens.
	// The event ring records every migration for the admin plane's
	// /events endpoint.
	ring := obs.NewEventRing(obs.DefaultRingSize)
	engine, err := tiered.New(tiered.Config{
		DRAMPages: 256,
		NVMPages:  1024,
		Tenants: []tiered.TenantConfig{
			{ID: 0, Name: "0:bodytrack", DRAMQuota: 160},
			{ID: 1, Name: "1:canneal", DRAMQuota: 64},
		},
		Events: ring,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.Start(); err != nil {
		log.Fatal(err)
	}

	// Expose it over RESP. RequireAuth makes tenancy mandatory: data
	// commands are refused until AUTH binds the connection to a tenant.
	srv, err := server.New(engine, server.Config{
		Addr:        "127.0.0.1:0",
		MaxConns:    128,
		IdleTimeout: time.Minute,
		RequireAuth: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Listen(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving RESP on %s\n", srv.Addr())

	// The admin plane rides alongside: one registry holding the engine
	// and server catalogs, scraped at /metrics, with health probes and
	// the migration trace at /events. Point a browser (or curl) at it.
	reg := obs.NewRegistry()
	engine.RegisterMetrics(reg)
	srv.RegisterMetrics(reg)
	adm, err := obs.NewAdmin(obs.AdminConfig{
		Addr:     "127.0.0.1:0",
		Registry: reg,
		Events:   ring,
		Ready: func() error {
			if !engine.Running() || !srv.Serving() {
				return fmt.Errorf("draining")
			}
			return nil
		},
		Invariants: engine.CheckInvariants,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := adm.Listen(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("admin plane on %s (/metrics /healthz /readyz /events /debug/pprof)\n", adm.URL())

	// A client connects, authenticates as tenant 0, and pipelines a
	// write-then-read pass over a small working set. GET replies name the
	// tier that served the page — DRAM once the working set is resident.
	client, err := server.Dial(srv.Addr().String(), time.Second)
	if err != nil {
		log.Fatal(err)
	}
	if err := client.Auth("0:bodytrack"); err != nil {
		log.Fatal(err)
	}
	const pages = 64
	for pass := 0; pass < 2; pass++ {
		for p := uint64(0); p < pages; p++ {
			if pass == 0 {
				client.EnqueueSet(p * 4096)
			} else {
				client.EnqueueGet(p * 4096)
			}
		}
		if err := client.Flush(); err != nil {
			log.Fatal(err)
		}
		for p := 0; p < pages; p++ {
			if _, err := client.ReadReply(); err != nil {
				log.Fatal(err)
			}
		}
	}

	// STATS returns the machine-readable counters, including the
	// connection's own tenant breakdown.
	stats, err := client.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine: %d accesses, %d DRAM hits, %d faults\n",
		stats["accesses"], stats["hits_dram"], stats["faults"])
	fmt.Printf("tenant: %d accesses, %d resident DRAM pages\n",
		stats["tenant_accesses"], stats["tenant_resident_dram"])
	client.Close()

	// The registry snapshot is the in-process view of the same series
	// /metrics exposes: per-command dispatch counts and the per-tenant
	// engine breakdown, read lazily with no effect on the serve path.
	samples := reg.Snapshot()
	if s, ok := obs.Find(samples, "tierd_resp_commands_by_name_total", obs.L("cmd", "get")); ok {
		fmt.Printf("dispatched %d GETs", s.Value)
	}
	if s, ok := obs.Find(samples, "tierd_resp_commands_by_name_total", obs.L("cmd", "set")); ok {
		fmt.Printf(", %d SETs", s.Value)
	}
	if s, ok := obs.Find(samples, "tierd_tenant_resident_dram_pages", obs.L("tenant", "0:bodytrack")); ok {
		fmt.Printf("; tenant 0 holds %d DRAM pages\n", s.Value)
	}

	// Graceful drain: stop accepting, answer everything in flight, stop
	// the migration daemon, and take the admin plane down last so its
	// probes cover the whole lifecycle.
	if err := srv.Shutdown(5 * time.Second); err != nil {
		log.Fatal(err)
	}
	if err := engine.Stop(); err != nil {
		log.Fatal(err)
	}
	if err := adm.Shutdown(2 * time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Println("drained cleanly")
}
