// Multitenant: consolidate two isolated workloads on one tiered-memory
// engine. Each tenant gets its own page namespace, a dedicated DRAM quota
// and an independent policy instance; a shared spill pool absorbs bursts.
// The demo drives both tenants concurrently, then shows that the hot
// tenant was capped at its quota plus the spill pool while the other kept
// its guaranteed share — the paper's consolidated `mix` study served live
// with fairness guarantees.
//
// This is the multi-tenant counterpart of examples/onlineservice: the
// same engine, but partitioned between users instead of shared blindly.
package main

import (
	"fmt"
	"log"

	"hybridmem/internal/memspec"
	"hybridmem/internal/tiered"
	"hybridmem/internal/trace"
	"hybridmem/internal/workload"
)

// tenantSpec describes one consolidated workload.
type tenantSpec struct {
	id       tiered.TenantID
	workload string
	scale    float64
	seed     int64
	quotaPct int
}

func main() {
	specs := []tenantSpec{
		{id: 0, workload: "bodytrack", scale: 0.05, seed: 1, quotaPct: 55},
		{id: 1, workload: "canneal", scale: 0.01, seed: 2, quotaPct: 30},
		// 15% of DRAM stays unquota'd: the spill pool either tenant may
		// borrow when the other is idle.
	}

	// Materialize each tenant's trace and size memory for the combined
	// footprint by the paper's rule (75% of the footprint, 10% of that
	// DRAM).
	traces := make([][]trace.Record, len(specs))
	totalPages := 0
	for i, s := range specs {
		spec, ok := workload.ByName(s.workload)
		if !ok {
			log.Fatalf("unknown workload %q", s.workload)
		}
		gen, err := workload.NewGenerator(spec, s.scale, s.seed)
		if err != nil {
			log.Fatal(err)
		}
		recs, err := trace.Materialize(gen, 0)
		if err != nil {
			log.Fatal(err)
		}
		traces[i] = recs
		totalPages += gen.Pages()
	}
	dram, nvm := memspec.DefaultSizing().Partition(totalPages)

	tenants := make([]tiered.TenantConfig, len(specs))
	for i, s := range specs {
		tenants[i] = tiered.TenantConfig{
			ID:        s.id,
			Name:      s.workload,
			DRAMQuota: dram * s.quotaPct / 100,
		}
	}
	engine, err := tiered.New(tiered.Config{
		Policy:    tiered.Proposed,
		DRAMPages: dram,
		NVMPages:  nvm,
		Tenants:   tenants,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.Start(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine up: DRAM %d + NVM %d frames, spill pool %d frames, %d tenants\n",
		dram, nvm, engine.SpillPool(), len(tenants))
	for _, s := range specs {
		st, _ := engine.TenantStats(s.id)
		fmt.Printf("  tenant %d (%s): quota %d frames, cap %d (quota + spill)\n",
			s.id, st.Name, st.DRAMQuota, st.DRAMCap)
	}

	// Drive both tenants concurrently, two closed-loop workers each.
	loads := make([]tiered.TenantLoad, len(specs))
	for i, s := range specs {
		loads[i] = tiered.TenantLoad{Tenant: s.id, Recs: traces[i], Goroutines: 2}
	}
	rep, err := tiered.RunTenantLoad(engine, loads, tiered.LoadConfig{Ops: 400000})
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.Stop(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\naggregate: %.0f ops/s (%d ops), p50 %v, p99 %v\n",
		rep.Aggregate.OpsPerSec, rep.Aggregate.Ops, rep.Aggregate.P50, rep.Aggregate.P99)
	for i, s := range specs {
		st, _ := engine.TenantStats(s.id)
		tr := rep.Tenants[i].Report
		fmt.Printf("tenant %d (%s):\n", s.id, st.Name)
		fmt.Printf("  served %d ops at %.0f ops/s, p50 %v p99 %v\n", tr.Ops, tr.OpsPerSec, tr.P50, tr.P99)
		fmt.Printf("  %d DRAM hits, %d NVM hits, %d faults\n", st.HitsDRAM, st.HitsNVM, st.Faults)
		fmt.Printf("  %d promotions, %d demotions — migration budget was shared fairly\n",
			st.Promotions, st.Demotions)
		fmt.Printf("  DRAM residency %d of cap %d: never above quota %d + spill %d\n",
			st.ResidentDRAM, st.DRAMCap, st.DRAMQuota, engine.SpillPool())
		if st.ResidentDRAM > st.DRAMCap {
			log.Fatalf("quota violated: tenant %d holds %d frames, cap %d", s.id, st.ResidentDRAM, st.DRAMCap)
		}
	}
}
