// Onlineservice: embed the online tiered-memory engine as a library. A
// small service starts the engine, serves a synthetic workload from several
// goroutines at once while the migration daemon runs in the background,
// snapshots live statistics mid-traffic, and shuts down gracefully.
//
// This is the concurrent counterpart of examples/quickstart: the same
// paper policy, but serving simultaneous callers instead of replaying a
// trace single-threaded.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"hybridmem/internal/memspec"
	"hybridmem/internal/tiered"
	"hybridmem/internal/trace"
	"hybridmem/internal/workload"
)

func main() {
	// Synthesize the bodytrack workload at 5% of its Table III size and
	// provision memory by the paper's rule (75% of the footprint, 10% of
	// that DRAM).
	spec, _ := workload.ByName("bodytrack")
	gen, err := workload.NewGenerator(spec, 0.05, 1)
	if err != nil {
		log.Fatal(err)
	}
	recs, err := trace.Materialize(gen, 0)
	if err != nil {
		log.Fatal(err)
	}
	dram, nvm := memspec.DefaultSizing().Partition(gen.Pages())

	// Build and start the engine: the proposed policy online, a sharded
	// page table, and the migration daemon scanning every millisecond.
	engine, err := tiered.New(tiered.Config{
		Policy:       tiered.Proposed,
		DRAMPages:    dram,
		NVMPages:     nvm,
		ScanInterval: time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.Start(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine up: DRAM %d + NVM %d frames, %d shards, policy %s\n",
		dram, nvm, engine.Config().Shards, engine.PolicyName())

	// Serve from four goroutines simultaneously, each replaying the trace
	// closed-loop from its own offset — four tenants hammering one memory.
	const goroutines = 4
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := len(recs) * w / goroutines
			for n := 0; n < 100000; n++ {
				r := recs[i]
				i++
				if i == len(recs) {
					i = 0
				}
				if _, err := engine.Serve(r.Addr, r.Op); err != nil {
					log.Fatal(err)
				}
			}
		}(w)
	}

	// Meanwhile, watch the engine work: Stats is safe to call under load.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	ticker := time.NewTicker(5 * time.Millisecond)
	defer ticker.Stop()
watch:
	for {
		select {
		case <-done:
			break watch
		case <-ticker.C:
			st := engine.Stats()
			fmt.Printf("  live: %7d accesses, %5.1f%% DRAM hits, %3d promotions, %2d scans\n",
				st.Accesses, 100*float64(st.HitsDRAM())/float64(max(st.Accesses, 1)),
				st.Promotions, st.Scans)
		}
	}

	// Graceful shutdown: the daemon drains its queue before Stop returns.
	if err := engine.Stop(); err != nil {
		log.Fatal(err)
	}
	st := engine.Stats()
	fmt.Printf("final: %d accesses (%d faults), %d promotions, %d demotions, %d evictions\n",
		st.Accesses, st.Faults, st.Promotions, st.Demotions, st.Evictions)
	fmt.Printf("       %d/%d DRAM and %d/%d NVM frames resident; %d scan epochs\n",
		st.ResidentDRAM, dram, st.ResidentNVM, nvm, st.Scans)
}
