// Policy comparison: the paper's central experiment in miniature. Three
// workloads with very different characters — write-heavy bodytrack,
// read-dominant streaming streamcluster, and the hybrid-unfriendly canneal —
// run under all five policies on identical traces, reproducing the ordering
// of Figs. 4a-4c: the proposed scheme beats CLOCK-DWF on performance, power
// and endurance, while canneal/streamcluster stay hard for hybrids.
package main

import (
	"fmt"
	"log"

	"hybridmem"
)

func main() {
	workloads := []string{"bodytrack", "streamcluster", "canneal"}
	policies := []hybridmem.PolicyKind{
		hybridmem.DRAMOnly, hybridmem.NVMOnly,
		hybridmem.ClockDWF, hybridmem.Proposed,
	}

	for _, wl := range workloads {
		warmup, roi, err := hybridmem.GenerateWorkload(wl, 0.01, 1)
		if err != nil {
			log.Fatal(err)
		}
		size := hybridmem.SizeFor(hybridmem.FootprintPages(warmup))
		fmt.Printf("%s (%d accesses, DRAM %d + NVM %d frames)\n",
			wl, len(roi), size.DRAMPages, size.NVMPages)
		fmt.Printf("  %-10s %14s %14s %12s %12s\n",
			"policy", "AMAT (ns)", "power (nJ)", "NVM writes", "promotions")

		var dramPower float64
		for _, kind := range policies {
			sys, err := hybridmem.NewSystem(kind, size)
			if err != nil {
				log.Fatal(err)
			}
			if err := sys.Warm(warmup); err != nil {
				log.Fatal(err)
			}
			res, err := sys.Run(roi)
			if err != nil {
				log.Fatal(err)
			}
			if kind == hybridmem.DRAMOnly {
				dramPower = res.PowerNanojoulesPerAccess
			}
			note := ""
			if kind != hybridmem.DRAMOnly && dramPower > 0 {
				note = fmt.Sprintf("  (power %.2fx of DRAM-only)",
					res.PowerNanojoulesPerAccess/dramPower)
			}
			// AMAT without the (policy-invariant) disk term, as the paper's
			// performance figures stack it.
			amat := res.AMATHitNanos + res.AMATMigrationNanos
			fmt.Printf("  %-10s %14.1f %14.2f %12d %12d%s\n",
				kind, amat, res.PowerNanojoulesPerAccess,
				res.NVMWriteLines, res.Promotions, note)
		}
		fmt.Println()
	}
}
