// Numa: run the tiered-memory engine on an emulated two-socket machine.
// Each NUMA node owns its own DRAM and NVM frame pools, shard groups map
// to home nodes, and the migration daemon runs one scan/promotion
// pipeline per node. A page is placed on its home node while the local
// pool has room; only when the home node is exhausted does the engine
// reach across the interconnect for a remote frame — and the per-node
// stats show exactly how often that happened and what it costs.
//
// The demo squeezes node 0 (a quarter of the DRAM) under a workload whose
// pages are spread evenly across both nodes, so node 0's pool overflows
// and its overflow lands on node 1 as remote placements. Node 1, with
// ample DRAM, stays almost entirely local.
package main

import (
	"fmt"
	"log"
	"strconv"
	"time"

	"hybridmem/internal/memspec"
	"hybridmem/internal/obs"
	"hybridmem/internal/tiered"
	"hybridmem/internal/trace"
	"hybridmem/internal/workload"
)

func main() {
	// Materialize one workload trace and size memory by the paper's rule.
	spec, ok := workload.ByName("bodytrack")
	if !ok {
		log.Fatal("unknown workload")
	}
	gen, err := workload.NewGenerator(spec, 0.05, 1)
	if err != nil {
		log.Fatal(err)
	}
	recs, err := trace.Materialize(gen, 0)
	if err != nil {
		log.Fatal(err)
	}
	dram, nvm := memspec.DefaultSizing().Partition(gen.Pages())

	// An asymmetric two-node topology: node 0 gets a quarter of the DRAM,
	// node 1 the rest; NVM splits evenly. The remote penalty feeds the
	// cost model the reports quote.
	topo := tiered.Topology{
		Nodes: []tiered.NodeConfig{
			{DRAMPages: dram / 4, NVMPages: nvm / 2},
			{DRAMPages: dram - dram/4, NVMPages: nvm - nvm/2},
		},
		RemotePenalty: 1.8,
	}
	ring := obs.NewEventRing(obs.DefaultRingSize)
	engine, err := tiered.New(tiered.Config{
		Policy:    tiered.Proposed,
		DRAMPages: dram,
		NVMPages:  nvm,
		Topology:  topo,
		Events:    ring,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.Start(); err != nil {
		log.Fatal(err)
	}

	// The admin plane exposes the engine's per-node series over HTTP
	// while the run is live; the same registry doubles as the in-process
	// snapshot API used below.
	reg := obs.NewRegistry()
	engine.RegisterMetrics(reg)
	adm, err := obs.NewAdmin(obs.AdminConfig{
		Addr:       "127.0.0.1:0",
		Registry:   reg,
		Events:     ring,
		Ready:      func() error { return nil },
		Invariants: engine.CheckInvariants,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := adm.Listen(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("admin plane on %s (scrape /metrics for the per-node series)\n", adm.URL())

	mspec := engine.Config().Spec
	fmt.Printf("engine up: %d NUMA nodes, DRAM %d + NVM %d frames total\n",
		engine.NumNodes(), dram, nvm)
	for _, ns := range engine.NodeStats() {
		fmt.Printf("  node %d: %d DRAM + %d NVM frames\n", ns.ID, ns.DRAMPages, ns.NVMPages)
	}
	fmt.Printf("migration economics: a local promotion breaks even after %d extra DRAM hits, "+
		"a remote one (%.1fx penalty) after %d\n\n",
		tiered.BreakEvenHits(mspec), topo.RemotePenalty, topo.BreakEvenHitsRemote(mspec))

	// Serve the trace from four closed-loop workers.
	rep, err := tiered.RunLoad(engine, recs, tiered.LoadConfig{Goroutines: 4, Ops: 400000})
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.Stop(); err != nil {
		log.Fatal(err)
	}

	st := engine.Stats()
	fmt.Printf("served %.0f ops/s (%d ops), p50 %v, p99 %v\n",
		rep.OpsPerSec, rep.Ops, rep.P50, rep.P99)
	fmt.Printf("migrations: %d promotions (%d remote), %d demotions (%d remote)\n\n",
		st.Promotions, st.RemotePromotions, st.Demotions, st.RemoteDemotions)
	for _, ns := range engine.NodeStats() {
		fmt.Printf("node %d:\n", ns.ID)
		fmt.Printf("  occupancy %d/%d DRAM, %d/%d NVM frames\n",
			ns.ResidentDRAM, ns.DRAMPages, ns.ResidentNVM, ns.NVMPages)
		fmt.Printf("  %d ops served for pages homed here\n", ns.Accesses)
		fmt.Printf("  faults %d local / %d remote, promotions %d local / %d remote\n",
			ns.FaultsLocal, ns.FaultsRemote, ns.PromotionsLocal, ns.PromotionsRemote)
		if ns.ResidentDRAM > ns.DRAMPages || ns.ResidentNVM > ns.NVMPages {
			log.Fatalf("node %d pool overflowed", ns.ID)
		}
	}
	if err := engine.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nper-node pools, quotas and spill tokens all reconcile (CheckInvariants ok)")

	// Read the same per-node figures back through the metrics registry:
	// every NodeStats field above is also a labeled series, so whatever
	// scrapes /metrics sees exactly what the Go API reports.
	samples := reg.Snapshot()
	for n := 0; n < engine.NumNodes(); n++ {
		nl := obs.L("node", strconv.Itoa(n))
		res, _ := obs.Find(samples, "tierd_node_resident_pages", nl, obs.L("tier", "dram"))
		pl, _ := obs.Find(samples, "tierd_node_promotions_total", nl, obs.L("locality", "local"))
		pr, _ := obs.Find(samples, "tierd_node_promotions_total", nl, obs.L("locality", "remote"))
		fmt.Printf("registry view of node %d: %d resident DRAM pages, %d local + %d remote promotions\n",
			n, res.Value, pl.Value, pr.Value)
	}
	if s, ok := obs.Find(samples, "tierd_events_published_total"); ok {
		fmt.Printf("migration trace ring captured %d events\n", s.Value)
	}
	if err := adm.Shutdown(2 * time.Second); err != nil {
		log.Fatal(err)
	}
}
