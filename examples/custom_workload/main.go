// Custom workload: define a new benchmark in the JSON spec format, generate
// its trace, inspect its locality with the reuse-distance analyzer, and
// evaluate the proposed scheme on it — the full pipeline for workloads
// beyond the built-in Table III set.
//
// The same JSON file works with `cmd/tracegen -specs`.
package main

import (
	"fmt"
	"log"
	"strings"

	"hybridmem/internal/core"
	"hybridmem/internal/memspec"
	"hybridmem/internal/model"
	"hybridmem/internal/sim"
	"hybridmem/internal/trace"
	"hybridmem/internal/workload"
)

// specJSON describes a key-value store: a small scorching-hot index, a
// DRAM-sized working set, moderate writes concentrated on the index, and a
// long cold tail visited rarely.
const specJSON = `[{
  "name": "kvstore",
  "working_set_kb": 65536,
  "reads": 2000000,
  "writes": 500000,
  "pattern": {
    "resident_fraction": 0.7,
    "hot_fraction": 0.05,
    "hot_bias": 0.85,
    "seq_run_len": 2,
    "repeat_burst": 3,
    "write_hot_fraction": 0.02,
    "write_hot_bias": 0.9,
    "roi_archive_visits": 0.5,
    "mean_gap_ns": 120
  }
}]`

func main() {
	specs, err := workload.LoadSpecs(strings.NewReader(specJSON))
	if err != nil {
		log.Fatal(err)
	}
	spec := specs[0]
	fmt.Printf("custom workload %q: %d KB footprint, %d reads + %d writes\n\n",
		spec.Name, spec.WorkingSetKB, spec.Reads, spec.Writes)

	const scale, seed = 0.05, 1

	// Locality profile first: the reuse-distance histogram explains what
	// any LRU-family policy will do with this workload.
	gen, err := workload.NewGenerator(spec, scale, seed)
	if err != nil {
		log.Fatal(err)
	}
	reuse, err := trace.AnalyzeReuse(gen, workload.PageSizeBytes, 24)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reuse-distance profile (%.2f%% cold accesses):\n", 100*reuse.ColdFraction())
	for _, b := range reuse.Histogram() {
		fmt.Printf("  %7d..%-7d %6.1f%%\n", b.LoDistance, b.HiDistance,
			100*float64(b.Count)/float64(reuse.Total()))
	}

	// Evaluate the proposed scheme on it.
	gen2, _ := workload.NewGenerator(spec, scale, seed)
	warm, err := trace.Materialize(gen2.WarmupSource(seed+1), 0)
	if err != nil {
		log.Fatal(err)
	}
	roi, err := trace.Materialize(gen2, 0)
	if err != nil {
		log.Fatal(err)
	}
	dram, nvm := memspec.DefaultSizing().Partition(gen2.Pages())
	pol, err := core.New(dram, nvm, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sim.Run(trace.NewSliceSource(warm), pol, memspec.Default(), sim.Options{}); err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(trace.NewSliceSource(roi), pol, memspec.Default(), sim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := model.Evaluate(res, memspec.Default())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nproposed scheme on kvstore (DRAM %d + NVM %d frames):\n", dram, nvm)
	fmt.Printf("  AMAT %.1f ns (hits %.1f + migrations %.1f), power %.2f nJ/access\n",
		rep.AMAT.Total()-rep.AMAT.Miss,
		rep.AMAT.HitDRAM+rep.AMAT.HitNVM, rep.AMAT.Migrations(), rep.APPR.Total())
	fmt.Printf("  DRAM hit ratio %.3f (the hot index should live there)\n",
		rep.Probabilities.PHitDRAM)
	fmt.Printf("  %d promotions, %d NVM line writes\n",
		res.Counts.Promotions, rep.NVMWrites.Total())
}
