// Endurance analysis: the Section III-C / V-B study. PCM cells survive a
// limited number of writes, so the write traffic a management policy sends
// to NVM directly sets the memory's lifetime. CLOCK-DWF's migrations can
// push NVM write traffic beyond an NVM-only memory (every write-triggered
// migration moves a whole 64-line page); the proposed scheme serves most
// writes in place and migrates only pages with demonstrated reuse.
package main

import (
	"fmt"
	"log"

	"hybridmem"
)

func main() {
	fmt.Printf("%-14s | %14s %14s %14s | %s\n",
		"workload", "nvm-only", "clock-dwf", "proposed", "proposed lifetime")
	fmt.Printf("%-14s | %44s |\n", "", "NVM line writes (lower is better)")

	for _, wl := range []string{"bodytrack", "facesim", "vips", "x264"} {
		warmup, roi, err := hybridmem.GenerateWorkload(wl, 0.01, 1)
		if err != nil {
			log.Fatal(err)
		}
		size := hybridmem.SizeFor(hybridmem.FootprintPages(warmup))

		writes := map[hybridmem.PolicyKind]int64{}
		var lifetime float64
		for _, kind := range []hybridmem.PolicyKind{
			hybridmem.NVMOnly, hybridmem.ClockDWF, hybridmem.Proposed,
		} {
			sys, err := hybridmem.NewSystem(kind, size)
			if err != nil {
				log.Fatal(err)
			}
			if err := sys.Warm(warmup); err != nil {
				log.Fatal(err)
			}
			res, err := sys.Run(roi)
			if err != nil {
				log.Fatal(err)
			}
			writes[kind] = res.NVMWriteLines
			if kind == hybridmem.Proposed {
				lifetime = res.LifetimeYears
			}
		}
		nvm := writes[hybridmem.NVMOnly]
		fmt.Printf("%-14s | %14d %8d (%.2fx) %6d (%.2fx) | %.1f years\n",
			wl, nvm,
			writes[hybridmem.ClockDWF], ratio(writes[hybridmem.ClockDWF], nvm),
			writes[hybridmem.Proposed], ratio(writes[hybridmem.Proposed], nvm),
			lifetime)
	}

	fmt.Println("\nRatios are relative to an NVM-only main memory (the paper's Fig. 4b")
	fmt.Println("normalization). The proposed scheme cuts write traffic roughly in half")
	fmt.Println("on average, which prolongs PCM lifetime proportionally.")
}

func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
