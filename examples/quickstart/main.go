// Quickstart: run one PARSEC-like workload on the proposed hybrid-memory
// migration scheme and print the paper's three headline metrics — average
// memory access time, power per request, and NVM write traffic.
package main

import (
	"fmt"
	"log"

	"hybridmem"
)

func main() {
	// Synthesize the ferret workload at 1% of its Table III size. The
	// warmup stream touches every page once (the initialization phase);
	// the ROI stream is what gets measured.
	warmup, roi, err := hybridmem.GenerateWorkload("ferret", 0.01, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Provision memory by the paper's rule: 75% of the footprint, of which
	// 10% is DRAM and 90% is NVM (PCM).
	size := hybridmem.SizeFor(hybridmem.FootprintPages(warmup))
	fmt.Printf("ferret: %d accesses over %d pages; DRAM %d + NVM %d frames\n\n",
		len(roi), hybridmem.FootprintPages(warmup), size.DRAMPages, size.NVMPages)

	sys, err := hybridmem.NewSystem(hybridmem.Proposed, size)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Warm(warmup); err != nil {
		log.Fatal(err)
	}
	res, err := sys.Run(roi)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("AMAT:       %8.1f ns/access (hits %.1f + disk %.1f + migrations %.1f)\n",
		res.AMATNanos, res.AMATHitNanos, res.AMATDiskNanos, res.AMATMigrationNanos)
	fmt.Printf("power:      %8.2f nJ/access (static %.2f + dynamic %.2f + faults %.2f + migration %.2f)\n",
		res.PowerNanojoulesPerAccess, res.PowerStatic, res.PowerDynamic,
		res.PowerPageFault, res.PowerMigration)
	fmt.Printf("NVM writes: %8d lines (%d in-place, %d fault loads, %d migrations)\n",
		res.NVMWriteLines, res.NVMWritesFromRequests, res.NVMWritesFromFaults,
		res.NVMWritesFromMigration)
	fmt.Printf("placement:  %.1f%% DRAM hits, %.1f%% NVM hits, %.4f%% faults; %d promotions\n",
		100*res.DRAMHitRatio, 100*res.NVMHitRatio, 100*res.FaultRatio, res.Promotions)
	fmt.Printf("endurance:  %.1f years (ideal wear leveling)\n", res.LifetimeYears)
}
