// Threshold tuning: the Section V-B sensitivity study. The migration
// thresholds decide how much demonstrated reuse a page needs before its
// migration is considered beneficial. Too low and the scheme thrashes like
// CLOCK-DWF; too high and hot pages linger in slow NVM. The paper observes
// that raytrace's optimum differs from every other workload and proposes
// adaptive thresholds as future work — both reproduced here.
package main

import (
	"fmt"
	"log"

	"hybridmem"
)

func main() {
	const wl = "raytrace"
	warmup, roi, err := hybridmem.GenerateWorkload(wl, 0.01, 1)
	if err != nil {
		log.Fatal(err)
	}
	size := hybridmem.SizeFor(hybridmem.FootprintPages(warmup))

	fmt.Printf("%s: threshold sensitivity (DRAM %d + NVM %d frames)\n\n",
		wl, size.DRAMPages, size.NVMPages)
	fmt.Printf("%10s %10s | %12s %12s %12s %12s\n",
		"read-thr", "write-thr", "promotions", "AMAT (ns)", "power (nJ)", "NVM writes")

	type point struct {
		name string
		opts []hybridmem.Option
		kind hybridmem.PolicyKind
	}
	grid := []point{}
	for _, th := range [][2]int{{4, 6}, {16, 24}, {64, 96}, {96, 128}, {256, 384}} {
		grid = append(grid, point{
			name: fmt.Sprintf("%d/%d", th[0], th[1]),
			opts: []hybridmem.Option{hybridmem.WithThresholds(th[0], th[1])},
			kind: hybridmem.Proposed,
		})
	}
	grid = append(grid, point{name: "adaptive", kind: hybridmem.ProposedAdaptive})

	for _, p := range grid {
		sys, err := hybridmem.NewSystem(p.kind, size, p.opts...)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.Warm(warmup); err != nil {
			log.Fatal(err)
		}
		res, err := sys.Run(roi)
		if err != nil {
			log.Fatal(err)
		}
		label := p.name
		if p.kind == hybridmem.ProposedAdaptive {
			label = "adaptive"
		}
		amat := res.AMATHitNanos + res.AMATMigrationNanos
		fmt.Printf("%21s | %12d %12.1f %12.2f %12d\n",
			label, res.Promotions, amat,
			res.PowerNanojoulesPerAccess, res.NVMWriteLines)
	}

	fmt.Println("\nLow thresholds promote on every burst (CLOCK-DWF-like thrash);")
	fmt.Println("high thresholds suppress migration entirely. The adaptive")
	fmt.Println("controller hill-climbs between them using measured migration utility.")
}
