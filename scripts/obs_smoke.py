#!/usr/bin/env python3
"""Admin-plane smoke checks for tierd -serve -admin.

Run against a live admin plane after RESP load has been driven:

    python3 scripts/obs_smoke.py http://127.0.0.1:16061 tierd-obs

Fetches /healthz, /readyz (with invariants), /metrics and /events, saves
the scrape and the event artifact under <prefix>-metrics.txt and
<prefix>-events.json, and asserts:

  - /healthz says ok, /readyz?invariants=1 returns 200;
  - /metrics is well-formed Prometheus text exposition;
  - per-tenant AND per-node series are present, and the serve counters
    (engine accesses, RESP commands) are nonzero;
  - the event artifact is hybridmem.results/v1 and holds at least one
    promotion AND one demotion event, each with tenant and node fields.

Only the standard library is used, so the check runs anywhere CI does.
"""

import json
import re
import sys
import urllib.request

SAMPLE_RE = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*(\{[^}]*\})?\s+-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$'
)


def fetch(url, timeout=10):
    with urllib.request.urlopen(url, timeout=timeout) as r:
        return r.status, r.read().decode()


def check_metrics(text):
    names = set()
    series = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line or line.startswith('#'):
            continue
        if not SAMPLE_RE.match(line):
            raise AssertionError('metrics line %d malformed: %r' % (lineno, line))
        name_labels, value = line.rsplit(' ', 1)
        names.add(name_labels.split('{', 1)[0])
        series[name_labels] = float(value)

    def value_of(prefix):
        return sum(v for k, v in series.items() if k.startswith(prefix))

    assert 'tierd_engine_accesses_total' in names, 'no engine access counter'
    assert value_of('tierd_engine_accesses_total') > 0, 'engine served no accesses'
    assert value_of('tierd_resp_commands_total') > 0, 'server dispatched no commands'

    tenant_series = [k for k in series if 'tenant="' in k]
    assert tenant_series, 'no per-tenant series in /metrics'
    assert any(k.startswith('tierd_tenant_accesses_total') and series[k] > 0
               for k in tenant_series), 'no tenant with nonzero accesses'

    node_series = [k for k in series if 'node="' in k]
    nodes = set(re.search(r'node="(\d+)"', k).group(1) for k in node_series)
    assert len(nodes) >= 2, 'per-node series cover %s, want >= 2 nodes' % sorted(nodes)
    return len(series), sorted(nodes)


def check_events(doc):
    assert doc.get('schema') == 'hybridmem.results/v1', \
        'event artifact schema %r' % doc.get('schema')
    rows = doc.get('results', [])
    assert rows, 'event artifact holds no events'
    promos = [r for r in rows if r.get('policy') == 'promotion']
    demos = [r for r in rows if str(r.get('policy', '')).startswith('demotion')]
    assert promos, 'no promotion events in the trace'
    assert demos, 'no demotion events in the trace'
    for r in promos[:1] + demos[:1]:
        v = r.get('values', {})
        assert 'tenant' in v and 'node' in v, \
            'event %s missing tenant/node attribution: %s' % (r.get('id'), sorted(v))
    return len(rows), len(promos), len(demos)


def main():
    if len(sys.argv) != 3:
        sys.exit('usage: obs_smoke.py <admin-url> <artifact-prefix>')
    base, prefix = sys.argv[1].rstrip('/'), sys.argv[2]

    status, body = fetch(base + '/healthz')
    assert status == 200 and body.strip() == 'ok', '/healthz: %d %r' % (status, body)

    status, body = fetch(base + '/readyz?invariants=1')
    assert status == 200, '/readyz: %d %r' % (status, body)

    status, metrics = fetch(base + '/metrics')
    assert status == 200, '/metrics: %d' % status
    with open(prefix + '-metrics.txt', 'w') as f:
        f.write(metrics)
    nseries, nodes = check_metrics(metrics)

    status, events = fetch(base + '/events?format=artifact')
    assert status == 200, '/events: %d' % status
    with open(prefix + '-events.json', 'w') as f:
        f.write(events)
    nevents, npromo, ndemo = check_events(json.loads(events))

    status, ndjson = fetch(base + '/events?n=5')
    assert status == 200 and ndjson.strip(), '/events ndjson: %d' % status
    json.loads(ndjson.strip().splitlines()[0])  # each line is one event

    print('tierd-obs-smoke: ok (%d series over nodes %s; %d events: %d promotions, %d demotions)'
          % (nseries, ','.join(nodes), nevents, npromo, ndemo))


if __name__ == '__main__':
    main()
